"""IBRNet-style generalizable NeRF (paper Sec. 2.2, Fig. 1).

One model class covers every algorithm variant in the paper's Table 2 by
swapping the cross-point density module:

* ``ray_module="transformer"`` — vanilla IBRNet (rows 1 of Table 2),
* ``ray_module="none"``        — "- ray transformer" ablation,
* ``ray_module="mixer"``       — "+ Ray-Mixer" (the Gen-NeRF model).

Pipeline per sampled point (Steps 2-4 of Sec. 2.2): fetch per-view scene
features -> per-view latent -> visibility-masked mean/variance pooling ->
view-weighted feature pooling (density branch) and view-weighted colour
blending (colour branch) -> density features -> cross-point module ->
density.  ``channel_scale`` shrinks every hidden width, which is how the
lightweight coarse model (Sec. 3.2 Step 1, scale 0.25) and the pruned
models (Table 2's channel-pruning rows) are built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import nn
from ..nn import Tensor
from ..geometry.camera import Camera
from .encoder import ConvEncoder
from .features import FetchedFeatures, fetch_features
from .ray_mixer import RayMixer
from .ray_transformer import PointwiseDensityHead, RayTransformer
from .sampling import SamplePacking, _aligned_rows, pack_samples
from .sparse import sparse_enabled

DIRECTION_DIM = 4  # relative-direction encoding width (diff vec + dot)

# Empirical OpenBLAS kernel-switch thresholds on this container's
# single-threaded scipy-openblas build (measured, pinned by the sparse
# equivalence suite).  ``sgemm`` picks its small-matrix kernel while
# M*K*N stays at or under ~1e6 output-cells-times-depth; the two
# kernels produce bitwise-different rows only for the narrow-output
# shapes flagged in ``_packed_pad_bounds``.  The N == 1 matrix-vector
# path switches kernels above 16384 rows.  The packed fine pass pads
# its row count so every GEMM it issues lands in the *same* kernel
# regime as its dense (R * N_max)-row counterpart — that is what makes
# packed and padded outputs byte-identical rather than merely close.
_SGEMM_KERNEL_SWITCH_CELLS = 1_000_000
_GEMV_KERNEL_SWITCH_ROWS = 16_384

# Running tally of packed-vs-dense forward calls, keyed for the test
# suite (engagement assertions) and cheap introspection; not thread- or
# process-shared.
PACK_STATS = {"packed": 0, "dense": 0}


def _scaled(width: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(width * scale)))


def _mlp_split(mlp: "nn.MLP", inputs) -> Tensor:
    """Run an MLP whose first layer consumes a (virtual) concatenation.

    ``inputs`` partition the first ``Linear``'s input width; they pass
    through :func:`repro.nn.functional.linear_split` (no concat copy,
    broadcast inputs multiply their weight slice once) and the rest of
    the stack applies as usual.
    """
    modules = list(mlp.net)
    first = modules[0]
    x = nn.functional.linear_split(inputs, first.weight, first.bias)
    for module in modules[1:]:
        x = module(x)
    return x


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of the generalizable NeRF.

    Defaults are the repo's "small scale" for numpy training; the
    paper-scale dimensions used for FLOPs accounting live in
    :mod:`repro.models.workload`.
    """

    feature_dim: int = 16          # C: encoder feature channels
    view_hidden: int = 16          # H1: per-view latent width
    score_hidden: int = 8          # H2: view-weighting head width
    density_hidden: int = 32       # Hd: density branch width
    density_feature_dim: int = 8   # D_sigma: f_sigma width
    transformer_qk_dim: int = 4
    transformer_heads: int = 1
    ray_module: str = "transformer"   # "transformer" | "mixer" | "none"
    n_max: int = 32                # point capacity (mixer W1 size / padding)
    channel_scale: float = 1.0
    encoder_hidden: int = 16

    def scaled(self, scale: float) -> "ModelConfig":
        """Config with every hidden width multiplied by ``scale``.

        Used for the coarse model (paper: channel scale 0.25) and for
        channel pruning (75% sparsity -> scale 0.25 on survivors).
        """
        return replace(
            self,
            feature_dim=_scaled(self.feature_dim, scale),
            view_hidden=_scaled(self.view_hidden, scale),
            score_hidden=_scaled(self.score_hidden, scale),
            density_hidden=_scaled(self.density_hidden, scale),
            density_feature_dim=_scaled(self.density_feature_dim, scale),
            encoder_hidden=_scaled(self.encoder_hidden, scale),
            channel_scale=self.channel_scale * scale,
        )


@dataclass
class RenderOutput:
    """Per-point predictions plus bookkeeping for compositing.

    Convention at masked (padded) sample positions: ``rgb`` and
    ``sigma`` are exactly ``+0.0`` and ``any_visible`` is False on both
    the padded and the packed fine pass; ``density_features`` is
    path-dependent there (the padded path leaves the MLP-of-zeros
    values, the packed path scatters zeros) — nothing downstream reads
    masked ``density_features``, and the equivalence suite pins the
    observable fields byte-identical.
    """

    rgb: Tensor          # (R, P, 3)
    sigma: Tensor        # (R, P) non-negative densities
    density_features: Tensor  # (R, P, D_sigma), pre-ray-module
    any_visible: np.ndarray   # (R, P) point is seen by >= 1 source view


class GeneralizableNeRF(nn.Module):
    """The full conditioned NeRF: encoder + aggregation + density module."""

    def __init__(self, config: Optional[ModelConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config or ModelConfig()
        rng = rng or np.random.default_rng(0)
        cfg = self.config

        self.encoder = ConvEncoder(cfg.feature_dim, hidden=cfg.encoder_hidden,
                                   rng=rng)
        view_in = cfg.feature_dim + 3 + DIRECTION_DIM
        self.view_mlp = nn.MLP(view_in, [cfg.view_hidden], cfg.view_hidden,
                               rng=rng)
        self.score_mlp = nn.MLP(3 * cfg.view_hidden, [cfg.score_hidden], 1,
                                rng=rng)
        self.color_mlp = nn.MLP(2 * cfg.view_hidden + DIRECTION_DIM,
                                [cfg.score_hidden], 1, rng=rng)
        self.density_mlp = nn.MLP(2 * cfg.view_hidden, [cfg.density_hidden],
                                  cfg.density_feature_dim, rng=rng)
        if cfg.ray_module == "transformer":
            self.ray_module = RayTransformer(cfg.density_feature_dim,
                                             qk_dim=cfg.transformer_qk_dim,
                                             heads=cfg.transformer_heads,
                                             rng=rng)
        elif cfg.ray_module == "mixer":
            self.ray_module = RayMixer(cfg.density_feature_dim, cfg.n_max,
                                       rng=rng)
        elif cfg.ray_module == "none":
            self.ray_module = PointwiseDensityHead(cfg.density_feature_dim,
                                                   rng=rng)
        else:
            raise ValueError(f"unknown ray_module {cfg.ray_module!r}")

    # ------------------------------------------------------------------
    def encode_scene(self, source_images: np.ndarray) -> Tensor:
        """One-time per-scene encoding of (S, 3, H, W) source images.

        Returns the stacked channel-last (S, Hf, Wf, C) feature tensor;
        index it per view or hand it to the batched fetcher whole.
        """
        return self.encoder.encode_views(source_images)

    def forward(self, points: np.ndarray, ray_dirs: np.ndarray,
                source_cameras: Sequence[Camera],
                feature_maps: Union[Tensor, Sequence[Tensor]],
                source_images: np.ndarray,
                mask: Optional[np.ndarray] = None,
                sparse: Optional[bool] = None) -> RenderOutput:
        """Predict (rgb, sigma) for (R, P, 3) sampled points.

        ``mask`` (R, P) marks valid (non-padded) samples; padded points
        get sigma = 0 via the compositing mask downstream, but are also
        excluded from the ray module's context here.

        ``sparse`` selects the packed fine pass (None defers to the
        ``REPRO_SPARSE`` knob, default on): when the mask has holes and
        the kernel-regime solver finds a feasible padded row count, the
        feature fetch and the pointwise MLP stacks run on the packed
        valid samples only and the results scatter back to the dense
        grid before the ray module — byte-identical outputs, cost
        proportional to per-ray occupancy instead of N_max.
        """
        packing = self._plan_packing(mask, len(source_cameras), sparse)
        if packing is None:
            fetched = fetch_features(points, ray_dirs, source_cameras,
                                     feature_maps, source_images,
                                     self.encoder.feature_scale)
            return self._forward_fetched(fetched, mask)
        return self._forward_packed(points, ray_dirs, source_cameras,
                                    feature_maps, source_images,
                                    np.asarray(mask, dtype=bool), packing)

    def _forward_fetched(self, fetched: FetchedFeatures,
                         mask: Optional[np.ndarray]) -> RenderOutput:
        """The padded (dense-grid) path: every (ray, point) cell pays."""
        PACK_STATS["dense"] += 1
        visibility = fetched.visibility  # (S, R, P) bool
        if mask is not None:
            visibility = visibility & np.asarray(mask, dtype=bool)[None]
        rgb, density_features, ray_mask = self._pointwise_stage(fetched,
                                                                visibility)
        return self._ray_stage(rgb, density_features, ray_mask)

    def _pointwise_stage(self, fetched: FetchedFeatures,
                         visibility: np.ndarray):
        """Steps 2-3 of the per-point pipeline: per-view latents, masked
        pooling, and the colour/density heads — everything that treats
        each sample independently of its ray neighbours.  Works on the
        dense (S, R, P, ...) grid and on packed (S, V_pad, 1, ...)
        buffers alike; all reductions run along the view axis, so each
        sample column computes identically in either layout."""
        # Dense renders usually see every point in every view; masking
        # is then multiplication by exactly 1.0 and a constant S
        # denominator, so the masking passes are skipped outright —
        # element values are unchanged (both modes share this branch,
        # so grad/inference bit-equality is unaffected).
        all_visible = bool(visibility.all())
        if all_visible:
            vis_t = None
            denom = Tensor(np.float32(visibility.shape[0]))
        else:
            vis_f = visibility.astype(np.float32)[..., None]  # (S, R, P, 1)
            vis_t = Tensor(vis_f)
            denom = Tensor(np.maximum(vis_f.sum(axis=0), 1e-6))  # (R, P, 1)
        rgb_t = Tensor(fetched.rgb)
        dirs_t = Tensor(fetched.direction_delta)

        # The aggregation MLPs consume concatenations of per-view and
        # pooled inputs; ``_mlp_split`` routes each part through its own
        # slice of the first layer's weight, so the (S, R, P, sum-width)
        # concat copies are never built and the per-ray pooled
        # statistics multiply their weight slice once instead of once
        # per view — the dominant non-gather cost of the render path.
        latents = _mlp_split(self.view_mlp,
                             [fetched.features, rgb_t, dirs_t])
        if not all_visible:
            latents = latents * vis_t

        mean = latents.sum(axis=0) / denom                  # (R, P, H1)
        centered = latents - mean.expand_dims(0)
        if not all_visible:
            centered = centered * vis_t
        var = (centered * centered).sum(axis=0) / denom     # (R, P, H1)
        mean_b = mean.expand_dims(0)                        # (1, R, P, H1)
        var_b = var.expand_dims(0)

        scores = _mlp_split(self.score_mlp,
                            [latents, mean_b, var_b])       # (S, R, P, 1)
        alpha = nn.functional.masked_softmax(
            scores, visibility[..., None], axis=0)
        pooled = (alpha * latents).sum(axis=0)              # (R, P, H1)

        color_logits = _mlp_split(self.color_mlp,
                                  [latents, mean_b, dirs_t])
        beta = nn.functional.masked_softmax(
            color_logits, visibility[..., None], axis=0)
        rgb = (beta * rgb_t).sum(axis=0)                    # (R, P, 3)

        density_features = _mlp_split(self.density_mlp,
                                      [pooled, var])         # (R, P, D_sigma)

        ray_mask = visibility.any(axis=0)                    # (R, P)
        return rgb, density_features, ray_mask

    def _ray_stage(self, rgb: Tensor, density_features: Tensor,
                   ray_mask: np.ndarray) -> RenderOutput:
        """Step 4: the cross-point density module.  Always runs on the
        dense (R, P) grid — the packed path scatters back first, so the
        Ray-Mixer / ray transformer see byte-identical inputs."""
        logits = self.ray_module(density_features, mask=ray_mask)
        sigma = nn.functional.softplus(logits) \
            * Tensor(ray_mask.astype(np.float32))
        return RenderOutput(rgb=rgb, sigma=sigma,
                            density_features=density_features,
                            any_visible=ray_mask)

    # ------------------------------------------------------------------
    # Sparse fine pass: pack -> fetch + pointwise MLPs on valid samples
    # only -> scatter zeros back -> dense ray stage.
    # ------------------------------------------------------------------
    def _forward_packed(self, points: np.ndarray, ray_dirs: np.ndarray,
                        source_cameras: Sequence[Camera],
                        feature_maps: Union[Tensor, Sequence[Tensor]],
                        source_images: np.ndarray, mask: np.ndarray,
                        packing: SamplePacking) -> RenderOutput:
        """Packed fine pass — byte-identical to the padded path.

        Each packed row is one valid (ray, point) cell, treated as a
        one-point ray: the gathered f64 points go through the same
        projection GEMM (row-stable at any count >= the padded
        alignment), the bilinear gathers and direction features are
        per-sample, and every pointwise GEMM runs at a padded row count
        chosen by :meth:`_packed_pad_bounds` to share its dense
        counterpart's kernel regime.  Valid rows then scatter into
        zero-filled dense buffers; masked cells get exactly the ``+0.0``
        the padded path computes for them (fully-masked softmax weights
        are ``+0.0`` and source colours are non-negative), so the ray
        stage and compositing see byte-identical inputs.
        """
        PACK_STATS["packed"] += 1
        num_rays, points_per_ray = mask.shape
        packed_points = points[packing.ray_index,
                               packing.point_index][:, None, :]
        packed_dirs = np.ascontiguousarray(ray_dirs[packing.ray_index])
        fetched = fetch_features(packed_points, packed_dirs, source_cameras,
                                 feature_maps, source_images,
                                 self.encoder.feature_scale)
        # Every packed row is a valid sample (padding rows replicate a
        # valid cell and are dropped below), so the sample mask is
        # all-True and per-view visibility is the whole story.
        rgb_p, density_p, ray_mask_p = self._pointwise_stage(
            fetched, fetched.visibility)

        valid, cells = packing.valid, num_rays * points_per_ray
        flat = packing.flat_index
        feature_dim = density_p.shape[-1]
        rgb = nn.functional.scatter_rows(
            rgb_p.reshape(packing.padded, 3)[:valid], flat,
            cells).reshape(num_rays, points_per_ray, 3)
        density_features = nn.functional.scatter_rows(
            density_p.reshape(packing.padded, feature_dim)[:valid], flat,
            cells).reshape(num_rays, points_per_ray, feature_dim)
        ray_mask = np.zeros(cells, dtype=bool)
        ray_mask[flat] = ray_mask_p.reshape(-1)[:valid]
        return self._ray_stage(rgb, density_features,
                               ray_mask.reshape(num_rays, points_per_ray))

    def _plan_packing(self, mask: Optional[np.ndarray], num_views: int,
                      sparse: Optional[bool]) -> Optional[SamplePacking]:
        """Decide whether (and how) to pack this forward call.

        Returns None — the dense path — whenever packing cannot both
        save work and stay byte-identical: training mode (trajectories
        are pinned against the padded reference), no mask / a mask
        without holes, an infeasible kernel-regime constraint set, or a
        padded row count that wouldn't beat the dense cell count.
        """
        if mask is None or self.training or not sparse_enabled(sparse):
            return None
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            return None
        valid = int(mask.sum())
        cells = mask.size
        if valid == 0 or valid == cells:
            return None
        floor, cap = self._packed_pad_bounds(num_views, cells)
        if floor is None:
            return None
        padded = _aligned_rows(max(valid, floor))
        if cap is not None and padded > cap:
            return None
        if padded >= cells:
            return None
        return pack_samples(mask, pad_to=padded)

    def _pointwise_gemm_shapes(self, num_views: int):
        """(row-scale, K, N) of every f32 GEMM the pointwise stage
        issues.  Row-scale is the multiplier on the sample-column count:
        ``num_views`` for per-view buffers, 1 for pooled/broadcast
        buffers (``linear_split`` multiplies broadcast inputs at their
        own shape).  Later layers of a split MLP run at the widest
        family of their inputs."""
        cfg = self.config
        per_view, pooled = num_views, 1
        shapes = []

        def add_mlp(mlp, first_slices):
            layers = [m for m in mlp.net if isinstance(m, nn.Linear)]
            for width, scale in first_slices:
                shapes.append((scale, width, layers[0].out_features))
            scale = max(s for _, s in first_slices)
            for layer in layers[1:]:
                shapes.append((scale, layer.in_features,
                               layer.out_features))

        add_mlp(self.view_mlp, [(cfg.feature_dim, per_view), (3, per_view),
                                (DIRECTION_DIM, per_view)])
        add_mlp(self.score_mlp, [(cfg.view_hidden, per_view),
                                 (cfg.view_hidden, pooled),
                                 (cfg.view_hidden, pooled)])
        add_mlp(self.color_mlp, [(cfg.view_hidden, per_view),
                                 (cfg.view_hidden, pooled),
                                 (DIRECTION_DIM, per_view)])
        add_mlp(self.density_mlp, [(cfg.view_hidden, pooled),
                                   (cfg.view_hidden, pooled)])
        return shapes

    def _packed_pad_bounds(self, num_views: int, dense_columns: int):
        """(min rows, max rows | None) keeping every packed GEMM in its
        dense counterpart's kernel regime; (None, None) if infeasible.

        Only the empirically regime-sensitive shapes constrain the
        count: narrow-output GEMMs (K > 24 with 4 <= N <= 8, e.g. the
        default density head's 32 -> 8 layer) switch kernels above
        ``_SGEMM_KERNEL_SWITCH_CELLS`` output-cells-times-depth, and
        the N == 1 matrix-vector heads switch above
        ``_GEMV_KERNEL_SWITCH_ROWS`` rows.  Small-regime tail kernels
        are only row-stable on aligned counts, so a dense call whose
        row count is not a multiple of 4 cannot be matched and the
        solver bails (the packed side is always 16-aligned).
        """
        floor, cap = 1, None
        for scale, k, n in self._pointwise_gemm_shapes(num_views):
            dense_rows = scale * dense_columns
            if n == 1:
                if dense_rows > _GEMV_KERNEL_SWITCH_ROWS:
                    floor = max(floor,
                                _GEMV_KERNEL_SWITCH_ROWS // scale + 1)
                else:
                    if dense_rows % 4:
                        return None, None
                    limit = _GEMV_KERNEL_SWITCH_ROWS // scale
                    cap = limit if cap is None else min(cap, limit)
            elif k > 24 and 4 <= n <= 8:
                cells_per_row = scale * k * n
                if dense_rows * k * n > _SGEMM_KERNEL_SWITCH_CELLS:
                    floor = max(
                        floor,
                        _SGEMM_KERNEL_SWITCH_CELLS // cells_per_row + 1)
                else:
                    limit = _SGEMM_KERNEL_SWITCH_CELLS // cells_per_row
                    cap = limit if cap is None else min(cap, limit)
            elif n <= 3 and dense_rows % 4:
                return None, None
        return floor, cap

    # ------------------------------------------------------------------
    def per_point_flops(self, num_views: int) -> int:
        """FLOPs per sampled point at this model's (small) scale."""
        cfg = self.config
        per_view = (self.view_mlp.flops(1) + self.score_mlp.flops(1)
                    + self.color_mlp.flops(1))
        return num_views * per_view + self.density_mlp.flops(1)

    def per_ray_flops(self, points_per_ray: int) -> int:
        return self.ray_module.flops(1, points_per_ray)
