"""IBRNet-style generalizable NeRF (paper Sec. 2.2, Fig. 1).

One model class covers every algorithm variant in the paper's Table 2 by
swapping the cross-point density module:

* ``ray_module="transformer"`` — vanilla IBRNet (rows 1 of Table 2),
* ``ray_module="none"``        — "- ray transformer" ablation,
* ``ray_module="mixer"``       — "+ Ray-Mixer" (the Gen-NeRF model).

Pipeline per sampled point (Steps 2-4 of Sec. 2.2): fetch per-view scene
features -> per-view latent -> visibility-masked mean/variance pooling ->
view-weighted feature pooling (density branch) and view-weighted colour
blending (colour branch) -> density features -> cross-point module ->
density.  ``channel_scale`` shrinks every hidden width, which is how the
lightweight coarse model (Sec. 3.2 Step 1, scale 0.25) and the pruned
models (Table 2's channel-pruning rows) are built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import nn
from ..nn import Tensor
from ..geometry.camera import Camera
from .encoder import ConvEncoder
from .features import FetchedFeatures, fetch_features
from .ray_mixer import RayMixer
from .ray_transformer import PointwiseDensityHead, RayTransformer

DIRECTION_DIM = 4  # relative-direction encoding width (diff vec + dot)


def _scaled(width: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(width * scale)))


def _mlp_split(mlp: "nn.MLP", inputs) -> Tensor:
    """Run an MLP whose first layer consumes a (virtual) concatenation.

    ``inputs`` partition the first ``Linear``'s input width; they pass
    through :func:`repro.nn.functional.linear_split` (no concat copy,
    broadcast inputs multiply their weight slice once) and the rest of
    the stack applies as usual.
    """
    modules = list(mlp.net)
    first = modules[0]
    x = nn.functional.linear_split(inputs, first.weight, first.bias)
    for module in modules[1:]:
        x = module(x)
    return x


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of the generalizable NeRF.

    Defaults are the repo's "small scale" for numpy training; the
    paper-scale dimensions used for FLOPs accounting live in
    :mod:`repro.models.workload`.
    """

    feature_dim: int = 16          # C: encoder feature channels
    view_hidden: int = 16          # H1: per-view latent width
    score_hidden: int = 8          # H2: view-weighting head width
    density_hidden: int = 32       # Hd: density branch width
    density_feature_dim: int = 8   # D_sigma: f_sigma width
    transformer_qk_dim: int = 4
    transformer_heads: int = 1
    ray_module: str = "transformer"   # "transformer" | "mixer" | "none"
    n_max: int = 32                # point capacity (mixer W1 size / padding)
    channel_scale: float = 1.0
    encoder_hidden: int = 16

    def scaled(self, scale: float) -> "ModelConfig":
        """Config with every hidden width multiplied by ``scale``.

        Used for the coarse model (paper: channel scale 0.25) and for
        channel pruning (75% sparsity -> scale 0.25 on survivors).
        """
        return replace(
            self,
            feature_dim=_scaled(self.feature_dim, scale),
            view_hidden=_scaled(self.view_hidden, scale),
            score_hidden=_scaled(self.score_hidden, scale),
            density_hidden=_scaled(self.density_hidden, scale),
            density_feature_dim=_scaled(self.density_feature_dim, scale),
            encoder_hidden=_scaled(self.encoder_hidden, scale),
            channel_scale=self.channel_scale * scale,
        )


@dataclass
class RenderOutput:
    """Per-point predictions plus bookkeeping for compositing."""

    rgb: Tensor          # (R, P, 3)
    sigma: Tensor        # (R, P) non-negative densities
    density_features: Tensor  # (R, P, D_sigma), pre-ray-module
    any_visible: np.ndarray   # (R, P) point is seen by >= 1 source view


class GeneralizableNeRF(nn.Module):
    """The full conditioned NeRF: encoder + aggregation + density module."""

    def __init__(self, config: Optional[ModelConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config or ModelConfig()
        rng = rng or np.random.default_rng(0)
        cfg = self.config

        self.encoder = ConvEncoder(cfg.feature_dim, hidden=cfg.encoder_hidden,
                                   rng=rng)
        view_in = cfg.feature_dim + 3 + DIRECTION_DIM
        self.view_mlp = nn.MLP(view_in, [cfg.view_hidden], cfg.view_hidden,
                               rng=rng)
        self.score_mlp = nn.MLP(3 * cfg.view_hidden, [cfg.score_hidden], 1,
                                rng=rng)
        self.color_mlp = nn.MLP(2 * cfg.view_hidden + DIRECTION_DIM,
                                [cfg.score_hidden], 1, rng=rng)
        self.density_mlp = nn.MLP(2 * cfg.view_hidden, [cfg.density_hidden],
                                  cfg.density_feature_dim, rng=rng)
        if cfg.ray_module == "transformer":
            self.ray_module = RayTransformer(cfg.density_feature_dim,
                                             qk_dim=cfg.transformer_qk_dim,
                                             heads=cfg.transformer_heads,
                                             rng=rng)
        elif cfg.ray_module == "mixer":
            self.ray_module = RayMixer(cfg.density_feature_dim, cfg.n_max,
                                       rng=rng)
        elif cfg.ray_module == "none":
            self.ray_module = PointwiseDensityHead(cfg.density_feature_dim,
                                                   rng=rng)
        else:
            raise ValueError(f"unknown ray_module {cfg.ray_module!r}")

    # ------------------------------------------------------------------
    def encode_scene(self, source_images: np.ndarray) -> Tensor:
        """One-time per-scene encoding of (S, 3, H, W) source images.

        Returns the stacked channel-last (S, Hf, Wf, C) feature tensor;
        index it per view or hand it to the batched fetcher whole.
        """
        return self.encoder.encode_views(source_images)

    def forward(self, points: np.ndarray, ray_dirs: np.ndarray,
                source_cameras: Sequence[Camera],
                feature_maps: Union[Tensor, Sequence[Tensor]],
                source_images: np.ndarray,
                mask: Optional[np.ndarray] = None) -> RenderOutput:
        """Predict (rgb, sigma) for (R, P, 3) sampled points.

        ``mask`` (R, P) marks valid (non-padded) samples; padded points
        get sigma = 0 via the compositing mask downstream, but are also
        excluded from the ray module's context here.
        """
        fetched = fetch_features(points, ray_dirs, source_cameras,
                                 feature_maps, source_images,
                                 self.encoder.feature_scale)
        return self._forward_fetched(fetched, mask)

    def _forward_fetched(self, fetched: FetchedFeatures,
                         mask: Optional[np.ndarray]) -> RenderOutput:
        cfg = self.config
        visibility = fetched.visibility  # (S, R, P) bool
        if mask is not None:
            visibility = visibility & np.asarray(mask, dtype=bool)[None]
        # Dense renders usually see every point in every view; masking
        # is then multiplication by exactly 1.0 and a constant S
        # denominator, so the masking passes are skipped outright —
        # element values are unchanged (both modes share this branch,
        # so grad/inference bit-equality is unaffected).
        all_visible = bool(visibility.all())
        if all_visible:
            vis_t = None
            denom = Tensor(np.float32(visibility.shape[0]))
        else:
            vis_f = visibility.astype(np.float32)[..., None]  # (S, R, P, 1)
            vis_t = Tensor(vis_f)
            denom = Tensor(np.maximum(vis_f.sum(axis=0), 1e-6))  # (R, P, 1)
        rgb_t = Tensor(fetched.rgb)
        dirs_t = Tensor(fetched.direction_delta)

        # The aggregation MLPs consume concatenations of per-view and
        # pooled inputs; ``_mlp_split`` routes each part through its own
        # slice of the first layer's weight, so the (S, R, P, sum-width)
        # concat copies are never built and the per-ray pooled
        # statistics multiply their weight slice once instead of once
        # per view — the dominant non-gather cost of the render path.
        latents = _mlp_split(self.view_mlp,
                             [fetched.features, rgb_t, dirs_t])
        if not all_visible:
            latents = latents * vis_t

        mean = latents.sum(axis=0) / denom                  # (R, P, H1)
        centered = latents - mean.expand_dims(0)
        if not all_visible:
            centered = centered * vis_t
        var = (centered * centered).sum(axis=0) / denom     # (R, P, H1)
        mean_b = mean.expand_dims(0)                        # (1, R, P, H1)
        var_b = var.expand_dims(0)

        scores = _mlp_split(self.score_mlp,
                            [latents, mean_b, var_b])       # (S, R, P, 1)
        alpha = nn.functional.masked_softmax(
            scores, visibility[..., None], axis=0)
        pooled = (alpha * latents).sum(axis=0)              # (R, P, H1)

        color_logits = _mlp_split(self.color_mlp,
                                  [latents, mean_b, dirs_t])
        beta = nn.functional.masked_softmax(
            color_logits, visibility[..., None], axis=0)
        rgb = (beta * rgb_t).sum(axis=0)                    # (R, P, 3)

        density_features = _mlp_split(self.density_mlp,
                                      [pooled, var])         # (R, P, D_sigma)

        ray_mask = visibility.any(axis=0)                    # (R, P)
        logits = self.ray_module(density_features, mask=ray_mask)
        sigma = nn.functional.softplus(logits) \
            * Tensor(ray_mask.astype(np.float32))
        return RenderOutput(rgb=rgb, sigma=sigma,
                            density_features=density_features,
                            any_visible=ray_mask)

    # ------------------------------------------------------------------
    def per_point_flops(self, num_views: int) -> int:
        """FLOPs per sampled point at this model's (small) scale."""
        cfg = self.config
        per_view = (self.view_mlp.flops(1) + self.score_mlp.flops(1)
                    + self.color_mlp.flops(1))
        return num_views * per_view + self.density_mlp.flops(1)

    def per_ray_flops(self, points_per_ray: int) -> int:
        return self.ray_module.flops(1, points_per_ray)
