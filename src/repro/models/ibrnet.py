"""IBRNet-style generalizable NeRF (paper Sec. 2.2, Fig. 1).

One model class covers every algorithm variant in the paper's Table 2 by
swapping the cross-point density module:

* ``ray_module="transformer"`` — vanilla IBRNet (rows 1 of Table 2),
* ``ray_module="none"``        — "- ray transformer" ablation,
* ``ray_module="mixer"``       — "+ Ray-Mixer" (the Gen-NeRF model).

Pipeline per sampled point (Steps 2-4 of Sec. 2.2): fetch per-view scene
features -> per-view latent -> visibility-masked mean/variance pooling ->
view-weighted feature pooling (density branch) and view-weighted colour
blending (colour branch) -> density features -> cross-point module ->
density.  ``channel_scale`` shrinks every hidden width, which is how the
lightweight coarse model (Sec. 3.2 Step 1, scale 0.25) and the pruned
models (Table 2's channel-pruning rows) are built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..nn import Tensor
from ..geometry.camera import Camera
from .encoder import ConvEncoder
from .features import FetchedFeatures, fetch_features
from .ray_mixer import RayMixer
from .ray_transformer import PointwiseDensityHead, RayTransformer

DIRECTION_DIM = 4  # relative-direction encoding width (diff vec + dot)


def _scaled(width: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(width * scale)))


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of the generalizable NeRF.

    Defaults are the repo's "small scale" for numpy training; the
    paper-scale dimensions used for FLOPs accounting live in
    :mod:`repro.models.workload`.
    """

    feature_dim: int = 16          # C: encoder feature channels
    view_hidden: int = 16          # H1: per-view latent width
    score_hidden: int = 8          # H2: view-weighting head width
    density_hidden: int = 32       # Hd: density branch width
    density_feature_dim: int = 8   # D_sigma: f_sigma width
    transformer_qk_dim: int = 4
    transformer_heads: int = 1
    ray_module: str = "transformer"   # "transformer" | "mixer" | "none"
    n_max: int = 32                # point capacity (mixer W1 size / padding)
    channel_scale: float = 1.0
    encoder_hidden: int = 16

    def scaled(self, scale: float) -> "ModelConfig":
        """Config with every hidden width multiplied by ``scale``.

        Used for the coarse model (paper: channel scale 0.25) and for
        channel pruning (75% sparsity -> scale 0.25 on survivors).
        """
        return replace(
            self,
            feature_dim=_scaled(self.feature_dim, scale),
            view_hidden=_scaled(self.view_hidden, scale),
            score_hidden=_scaled(self.score_hidden, scale),
            density_hidden=_scaled(self.density_hidden, scale),
            density_feature_dim=_scaled(self.density_feature_dim, scale),
            encoder_hidden=_scaled(self.encoder_hidden, scale),
            channel_scale=self.channel_scale * scale,
        )


@dataclass
class RenderOutput:
    """Per-point predictions plus bookkeeping for compositing."""

    rgb: Tensor          # (R, P, 3)
    sigma: Tensor        # (R, P) non-negative densities
    density_features: Tensor  # (R, P, D_sigma), pre-ray-module
    any_visible: np.ndarray   # (R, P) point is seen by >= 1 source view


class GeneralizableNeRF(nn.Module):
    """The full conditioned NeRF: encoder + aggregation + density module."""

    def __init__(self, config: Optional[ModelConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config or ModelConfig()
        rng = rng or np.random.default_rng(0)
        cfg = self.config

        self.encoder = ConvEncoder(cfg.feature_dim, hidden=cfg.encoder_hidden,
                                   rng=rng)
        view_in = cfg.feature_dim + 3 + DIRECTION_DIM
        self.view_mlp = nn.MLP(view_in, [cfg.view_hidden], cfg.view_hidden,
                               rng=rng)
        self.score_mlp = nn.MLP(3 * cfg.view_hidden, [cfg.score_hidden], 1,
                                rng=rng)
        self.color_mlp = nn.MLP(2 * cfg.view_hidden + DIRECTION_DIM,
                                [cfg.score_hidden], 1, rng=rng)
        self.density_mlp = nn.MLP(2 * cfg.view_hidden, [cfg.density_hidden],
                                  cfg.density_feature_dim, rng=rng)
        if cfg.ray_module == "transformer":
            self.ray_module = RayTransformer(cfg.density_feature_dim,
                                             qk_dim=cfg.transformer_qk_dim,
                                             heads=cfg.transformer_heads,
                                             rng=rng)
        elif cfg.ray_module == "mixer":
            self.ray_module = RayMixer(cfg.density_feature_dim, cfg.n_max,
                                       rng=rng)
        elif cfg.ray_module == "none":
            self.ray_module = PointwiseDensityHead(cfg.density_feature_dim,
                                                   rng=rng)
        else:
            raise ValueError(f"unknown ray_module {cfg.ray_module!r}")

    # ------------------------------------------------------------------
    def encode_scene(self, source_images: np.ndarray) -> List[Tensor]:
        """One-time per-scene encoding of (S, 3, H, W) source images."""
        return self.encoder.encode_views(source_images)

    def forward(self, points: np.ndarray, ray_dirs: np.ndarray,
                source_cameras: Sequence[Camera],
                feature_maps: Sequence[Tensor], source_images: np.ndarray,
                mask: Optional[np.ndarray] = None) -> RenderOutput:
        """Predict (rgb, sigma) for (R, P, 3) sampled points.

        ``mask`` (R, P) marks valid (non-padded) samples; padded points
        get sigma = 0 via the compositing mask downstream, but are also
        excluded from the ray module's context here.
        """
        fetched = fetch_features(points, ray_dirs, source_cameras,
                                 feature_maps, source_images,
                                 self.encoder.feature_scale)
        return self._forward_fetched(fetched, mask)

    def _forward_fetched(self, fetched: FetchedFeatures,
                         mask: Optional[np.ndarray]) -> RenderOutput:
        cfg = self.config
        num_views = fetched.num_views
        visibility = fetched.visibility  # (S, R, P) bool
        if mask is not None:
            visibility = visibility & np.asarray(mask, dtype=bool)[None]
        vis_f = visibility.astype(np.float32)[..., None]  # (S, R, P, 1)
        vis_t = Tensor(vis_f)

        per_view_in = nn.concatenate(
            [fetched.features, Tensor(fetched.rgb),
             Tensor(fetched.direction_delta)], axis=-1)
        latents = self.view_mlp(per_view_in) * vis_t       # (S, R, P, H1)

        denom = Tensor(np.maximum(vis_f.sum(axis=0), 1e-6))  # (R, P, 1)
        mean = latents.sum(axis=0) / denom                  # (R, P, H1)
        centered = (latents - mean.expand_dims(0)) * vis_t
        var = (centered * centered).sum(axis=0) / denom     # (R, P, H1)

        mean_b = nn.stack([mean] * num_views, axis=0)
        var_b = nn.stack([var] * num_views, axis=0)

        scores = self.score_mlp(
            nn.concatenate([latents, mean_b, var_b], axis=-1))  # (S,R,P,1)
        alpha = nn.functional.masked_softmax(
            scores, visibility[..., None], axis=0)
        pooled = (alpha * latents).sum(axis=0)              # (R, P, H1)

        color_logits = self.color_mlp(
            nn.concatenate([latents, mean_b,
                            Tensor(fetched.direction_delta)], axis=-1))
        beta = nn.functional.masked_softmax(
            color_logits, visibility[..., None], axis=0)
        rgb = (beta * Tensor(fetched.rgb)).sum(axis=0)      # (R, P, 3)

        density_features = self.density_mlp(
            nn.concatenate([pooled, var], axis=-1))          # (R, P, D_sigma)

        ray_mask = visibility.any(axis=0)                    # (R, P)
        logits = self.ray_module(density_features, mask=ray_mask)
        sigma = nn.functional.softplus(logits) \
            * Tensor(ray_mask.astype(np.float32))
        return RenderOutput(rgb=rgb, sigma=sigma,
                            density_features=density_features,
                            any_visible=ray_mask)

    # ------------------------------------------------------------------
    def per_point_flops(self, num_views: int) -> int:
        """FLOPs per sampled point at this model's (small) scale."""
        cfg = self.config
        per_view = (self.view_mlp.flops(1) + self.score_mlp.flops(1)
                    + self.color_mlp.flops(1))
        return num_views * per_view + self.density_mlp.flops(1)

    def per_ray_flops(self, points_per_ray: int) -> int:
        return self.ray_module.flops(1, points_per_ray)
