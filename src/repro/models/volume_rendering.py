"""Differentiable volume rendering (paper Eqs. 1-2).

Twin of :func:`repro.scenes.render_gt.composite_numpy`, written against
the autograd :class:`~repro.nn.Tensor` so gradients reach densities and
colours during training.  Supports a validity mask so rays padded to
``N_max`` by the coarse-then-focus sampler (paper Sec. 3.2, Step 3)
contribute nothing — "the padded ones do not contribute to the volume
rendering in Eq. 2".
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import Tensor


def composite(sigmas: Tensor, colors: Tensor, depths: np.ndarray, far: float,
              mask: Optional[np.ndarray] = None,
              white_background: bool = False,
              max_delta: Optional[float] = None) -> Tuple[Tensor, Tensor]:
    """Quadrature of Eq. 2 with autograd.

    Parameters
    ----------
    sigmas:  Tensor (R, P), non-negative densities sorted by depth.
    colors:  Tensor (R, P, 3).
    depths:  numpy (R, P) sample depths (constant w.r.t. gradients).
    far:     scene far bound closing the last interval.
    mask:    optional bool (R, P); False marks padded samples.

    Returns
    -------
    (pixel_colors (R, 3), weights (R, P)).
    """
    depths = np.asarray(depths, dtype=np.float64)
    deltas = np.diff(depths, axis=-1)
    last = np.maximum(far - depths[..., -1:], 1e-6)
    deltas = np.concatenate([deltas, last], axis=-1)
    if max_delta is not None:
        # Sparse focused sampling: unsampled gaps are assumed empty (see
        # repro.scenes.render_gt.composite_numpy).
        deltas = np.minimum(deltas, max_delta)
    deltas = deltas.astype(np.float32)

    if mask is not None:
        mask_f = np.asarray(mask, dtype=np.float32)
        sigmas = sigmas * Tensor(mask_f)
        # Padded samples also close no interval.
        deltas = deltas * mask_f

    optical = sigmas * Tensor(deltas)
    alpha = 1.0 - (-optical).exp()
    # Exclusive prefix of the optical depth gives T_k = exp(-sum_{j<k}).
    accumulated = optical.cumsum(axis=-1)
    shifted = accumulated - optical
    transmittance = (-shifted).exp()
    weights = transmittance * alpha
    pixel = (weights.expand_dims(-1) * colors).sum(axis=-2)
    if white_background:
        residual = 1.0 - weights.sum(axis=-1, keepdims=True)
        pixel = pixel + residual
    return pixel, weights


def expected_depth(weights: Tensor, depths: np.ndarray) -> Tensor:
    """Weight-averaged depth along each ray (a cheap depth map)."""
    return (weights * Tensor(np.asarray(depths, dtype=np.float32))).sum(axis=-1)


def opacity(weights: Tensor) -> Tensor:
    """Total hitting probability per ray, in [0, 1]."""
    return weights.sum(axis=-1)
