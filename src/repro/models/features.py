"""Scene-feature acquisition (paper Sec. 2.2, Step 2).

Projects sampled 3D points onto every source view's image plane via the
projective transform pi and fetches the feature vector at the projection
by bilinear interpolation.  This is *the* memory-bound operation of
generalizable NeRFs — H x W x P x S x D accesses per frame (Sec. 1) —
and the quantity every hardware experiment in this repo accounts for.

The bilinear gather is differentiable so encoder training works; the
geometric projection itself is constant w.r.t. model parameters.

Performance note: this is the end-to-end render path's dominant
non-GEMM cost, so the per-view Python loop is gone — all S views gather
through one flat-indexed corner lookup into the *stacked* channel-last
feature tensor that :meth:`repro.models.encoder.ConvEncoder.encode_views`
now returns, and the source-colour / direction-delta / visibility
arrays are computed for the whole (S, R, P) block at once.  Only the
camera projection itself stays per-view (each view has its own
extrinsics; the matmul is a trivial cost).  The feature gather and the
visibility test keep per-element arithmetic unchanged and are
bit-identical to the per-view loop; the colour and direction lerps
deliberately run at float32 (they feed float32 MLPs), agreeing with the
seed's float64 versions to interpolation tolerance —
``tests/models/test_render_e2e_equivalence.py`` pins both.
``benchmarks/harness.py::render_rays_e2e_r1024`` times the effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..geometry.camera import Camera
from ..nn import Tensor, concatenate


def bilinear_gather(feature_map: Tensor, pixels: np.ndarray) -> Tensor:
    """Bilinearly interpolate a channel-last (H, W, C) map at (N, 2) pixels.

    Out-of-bounds pixels are clamped to the border (callers mask them out
    separately).  The four corner gathers route gradients back into the
    map via scatter-add, matching the accelerator's interpolator unit
    which reads the four nearest feature elements (Sec. 4.5).
    """
    height, width = feature_map.shape[0], feature_map.shape[1]
    pix = np.asarray(pixels, dtype=np.float64)
    u = np.clip(pix[:, 0], 0.0, width - 1.0)
    v = np.clip(pix[:, 1], 0.0, height - 1.0)
    x0 = np.floor(u).astype(np.int64)
    y0 = np.floor(v).astype(np.int64)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = (u - x0).astype(np.float32)[:, None]
    fy = (v - y0).astype(np.float32)[:, None]

    f00 = feature_map[(y0, x0)]
    f01 = feature_map[(y0, x1)]
    f10 = feature_map[(y1, x0)]
    f11 = feature_map[(y1, x1)]
    top = f00 * (1.0 - fx) + f01 * fx
    bottom = f10 * (1.0 - fx) + f11 * fx
    return top * (1.0 - fy) + bottom * fy


def stacked_feature_maps(feature_maps: Union[Tensor, Sequence[Tensor]]
                         ) -> Tensor:
    """Coerce per-view feature maps to one stacked (S, H, W, C) tensor.

    The encoder already returns the stacked form; a list of (H, W, C)
    per-view tensors (the pre-batching API, still used by tests and
    external callers) is concatenated with gradient routing intact.
    """
    if isinstance(feature_maps, Tensor):
        return feature_maps
    return concatenate([m.expand_dims(0) for m in feature_maps], axis=0)


def _batched_bilinear_gather(stacked: Tensor, pixels: np.ndarray) -> Tensor:
    """Bilinear interpolation of all views at once.

    ``stacked`` is (S, H, W, C) channel-last; ``pixels`` (S, N, 2) gives
    each view its own projection of the same N points.  The four corner
    gathers become single flat-index lookups into the (S*H*W, C) view of
    the stacked tensor — one graph node each instead of 4*S — and the
    lerp arithmetic is element-for-element the same as
    :func:`bilinear_gather`, so outputs are bit-identical to the
    per-view loop.
    """
    num_views, height, width = stacked.shape[0], stacked.shape[1], stacked.shape[2]
    pix = np.asarray(pixels, dtype=np.float64)
    u = np.clip(pix[..., 0], 0.0, width - 1.0)
    v = np.clip(pix[..., 1], 0.0, height - 1.0)
    x0 = np.floor(u).astype(np.int64)
    y0 = np.floor(v).astype(np.int64)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = (u - x0).astype(np.float32)[..., None]
    fy = (v - y0).astype(np.float32)[..., None]

    flat = stacked.reshape(num_views * height * width, stacked.shape[3])
    base = (np.arange(num_views, dtype=np.int64) * height * width)[:, None]
    f00 = flat[base + y0 * width + x0]
    f01 = flat[base + y0 * width + x1]
    f10 = flat[base + y1 * width + x0]
    f11 = flat[base + y1 * width + x1]
    top = f00 * (1.0 - fx) + f01 * fx
    bottom = f10 * (1.0 - fx) + f11 * fx
    return top * (1.0 - fy) + bottom * fy


@dataclass
class FetchedFeatures:
    """Per-view data gathered for a block of sampled points.

    Shapes use S = #source views, R = rays, P = points per ray.
    """

    features: Tensor        # (S, R, P, C) interpolated scene features
    rgb: np.ndarray         # (S, R, P, 3) interpolated source colours
    direction_delta: np.ndarray  # (S, R, P, 4) view-direction differences
    visibility: np.ndarray  # (S, R, P) bool: point projects inside view

    @property
    def num_views(self) -> int:
        """S — the number of conditioning source views gathered from."""
        return self.features.shape[0]


def direction_features(points: np.ndarray, ray_dirs: np.ndarray,
                       source: Camera) -> np.ndarray:
    """IBRNet-style relative direction encoding, (R, P, 4).

    Concatenates the difference between the target ray direction and the
    unit vector from the source camera to the point, plus their dot
    product — the cue for weighting views by angular proximity.
    """
    to_point = points - source.center
    norms = np.linalg.norm(to_point, axis=-1, keepdims=True)
    source_dirs = to_point / np.maximum(norms, 1e-9)
    target_dirs = np.broadcast_to(ray_dirs[:, None, :], points.shape)
    diff = target_dirs - source_dirs
    dot = np.sum(target_dirs * source_dirs, axis=-1, keepdims=True)
    return np.concatenate([diff, dot], axis=-1).astype(np.float32)


def _batched_direction_features(points: np.ndarray, ray_dirs: np.ndarray,
                                centers: np.ndarray) -> np.ndarray:
    """:func:`direction_features` for all S views at once, (S, R, P, 4).

    Computed in float32: the encoding is consumed by float32 MLPs, so
    carrying the intermediate geometry at float64 (as the per-view
    version did) doubled the memory traffic of an op that runs for
    every (view, ray, point) of every frame.
    """
    to_point = (points[None] - centers[:, None, None, :]).astype(np.float32)
    norms = np.sqrt(np.sum(to_point * to_point, axis=-1, keepdims=True))
    source_dirs = to_point / np.maximum(norms, 1e-9)
    target_dirs = np.broadcast_to(
        ray_dirs[None, :, None, :].astype(np.float32), to_point.shape)
    diff = target_dirs - source_dirs
    dot = np.sum(target_dirs * source_dirs, axis=-1, keepdims=True)
    return np.concatenate([diff, dot], axis=-1)


def fetch_features(points: np.ndarray, ray_dirs: np.ndarray,
                   source_cameras: Sequence[Camera],
                   feature_maps: Union[Tensor, Sequence[Tensor]],
                   source_images: np.ndarray,
                   feature_scale: float = 0.5) -> FetchedFeatures:
    """Acquire scene features for (R, P, 3) sampled points from all views.

    ``source_images`` is (S, 3, H, W) in [0, 1]; ``feature_maps`` is the
    stacked channel-last encoder output (S, Hf, Wf, C) — a list of
    per-view (Hf, Wf, C) tensors is also accepted and stacked here.
    """
    num_views = len(source_cameras)
    rays, pts_per_ray = points.shape[0], points.shape[1]
    flat_points = points.reshape(-1, 3)
    num_points = flat_points.shape[0]
    maps = stacked_feature_maps(feature_maps)

    # Projection stays per-view (per-camera extrinsics); everything
    # downstream of the projected pixels is batched over views.
    pixels_sv = np.empty((num_views, num_points, 2), dtype=np.float64)
    depth_sv = np.empty((num_views, num_points), dtype=np.float64)
    for index, camera in enumerate(source_cameras):
        pixels_sv[index], depth_sv[index] = camera.project(flat_points,
                                                           return_depth=True)
    finite = np.isfinite(pixels_sv).all(axis=-1) & (depth_sv > 1e-6)
    safe_pixels = np.where(finite[..., None], pixels_sv, 0.0)

    gathered = _batched_bilinear_gather(maps, safe_pixels * feature_scale)
    features = gathered.reshape(num_views, rays, pts_per_ray,
                                gathered.shape[-1])

    images_hwc = np.ascontiguousarray(
        np.transpose(source_images, (0, 2, 3, 1)).astype(np.float32))
    rgb = _bilinear_numpy_batched(images_hwc, safe_pixels)
    view_rgb = rgb.reshape(num_views, rays, pts_per_ray, 3)

    centers = np.stack([camera.center for camera in source_cameras], axis=0)
    view_dirs = _batched_direction_features(points, ray_dirs, centers)

    widths = np.array([camera.intrinsics.width for camera in source_cameras],
                      dtype=np.float64)[:, None]
    heights = np.array([camera.intrinsics.height for camera in source_cameras],
                       dtype=np.float64)[:, None]
    inside = (finite
              & (pixels_sv[..., 0] >= 0) & (pixels_sv[..., 0] <= widths - 1)
              & (pixels_sv[..., 1] >= 0) & (pixels_sv[..., 1] <= heights - 1))
    view_visible = inside.reshape(num_views, rays, pts_per_ray)

    return FetchedFeatures(features=features, rgb=view_rgb,
                           direction_delta=view_dirs, visibility=view_visible)


def fetched_pixel_mask(points: np.ndarray,
                       source_cameras: Sequence[Camera],
                       map_height: int, map_width: int,
                       feature_scale: float = 0.5) -> np.ndarray:
    """Feature-map pixels :func:`fetch_features` will gather, as a
    (S, map_height, map_width) boolean mask.

    Replicates the fetcher's bilinear-corner arithmetic exactly —
    non-finite projections clamp to pixel 0 (they are still gathered,
    with zero lerp weight), coordinates clip to the map, and all four
    corners of every point are marked.  The footprint-restricted encode
    (:mod:`repro.models.footprint`) treats this set as the pixels whose
    values and gradients must be bit-exact.
    """
    flat_points = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    mask = np.zeros((len(source_cameras), map_height, map_width),
                    dtype=bool)
    for index, camera in enumerate(source_cameras):
        pixels, depth = camera.project(flat_points, return_depth=True)
        finite = np.isfinite(pixels).all(axis=-1) & (depth > 1e-6)
        safe = np.where(finite[:, None], pixels, 0.0) * feature_scale
        u = np.clip(safe[:, 0], 0.0, map_width - 1.0)
        v = np.clip(safe[:, 1], 0.0, map_height - 1.0)
        x0 = np.floor(u).astype(np.int64)
        y0 = np.floor(v).astype(np.int64)
        x1 = np.minimum(x0 + 1, map_width - 1)
        y1 = np.minimum(y0 + 1, map_height - 1)
        view = mask[index]
        view[y0, x0] = True
        view[y0, x1] = True
        view[y1, x0] = True
        view[y1, x1] = True
    return mask


def _bilinear_numpy_batched(images_shwc: np.ndarray,
                            pixels: np.ndarray) -> np.ndarray:
    """Plain-numpy bilinear sample over all views: (S, H, W, C) at (S, N, 2).

    The lerp runs in float32 (corner selection stays float64): the
    per-view version promoted the float32 image to float64 through the
    whole interpolation only to cast back, which doubled the traffic of
    the render path's largest numpy gather.
    """
    num_views, height, width = images_shwc.shape[:3]
    flat = images_shwc.reshape(num_views * height * width,
                               images_shwc.shape[3])
    u = np.clip(pixels[..., 0], 0.0, width - 1.0)
    v = np.clip(pixels[..., 1], 0.0, height - 1.0)
    x0 = np.floor(u).astype(np.int64)
    y0 = np.floor(v).astype(np.int64)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = (u - x0).astype(np.float32)[..., None]
    fy = (v - y0).astype(np.float32)[..., None]
    base = (np.arange(num_views, dtype=np.int64) * height * width)[:, None]
    top = flat[base + y0 * width + x0] * (1 - fx) \
        + flat[base + y0 * width + x1] * fx
    bottom = flat[base + y1 * width + x0] * (1 - fx) \
        + flat[base + y1 * width + x1] * fx
    return top * (1 - fy) + bottom * fy


def feature_access_bytes(height: int, width: int, points_per_ray: float,
                         num_views: int, feature_dim: int,
                         bytes_per_element: int = 1) -> float:
    """The paper's headline access count H*W*P*S*D (Sec. 1) in bytes.

    Bilinear interpolation touches 4 corners, but a cache/buffer with any
    locality coalesces them; the paper counts one D-vector per (point,
    view), which we follow.
    """
    return float(height) * width * points_per_ray * num_views * feature_dim \
        * bytes_per_element
