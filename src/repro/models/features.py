"""Scene-feature acquisition (paper Sec. 2.2, Step 2).

Projects sampled 3D points onto every source view's image plane via the
projective transform pi and fetches the feature vector at the projection
by bilinear interpolation.  This is *the* memory-bound operation of
generalizable NeRFs — H x W x P x S x D accesses per frame (Sec. 1) —
and the quantity every hardware experiment in this repo accounts for.

The bilinear gather is differentiable so encoder training works; the
geometric projection itself is constant w.r.t. model parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..geometry.camera import Camera
from ..nn import Tensor, concatenate, grad_enabled
from ..nn.tensor import as_tensor


def bilinear_gather(feature_map: Tensor, pixels: np.ndarray) -> Tensor:
    """Bilinearly interpolate a channel-last (H, W, C) map at (N, 2) pixels.

    Out-of-bounds pixels are clamped to the border (callers mask them out
    separately).  The four corner gathers route gradients back into the
    map via scatter-add, matching the accelerator's interpolator unit
    which reads the four nearest feature elements (Sec. 4.5).
    """
    height, width = feature_map.shape[0], feature_map.shape[1]
    pix = np.asarray(pixels, dtype=np.float64)
    u = np.clip(pix[:, 0], 0.0, width - 1.0)
    v = np.clip(pix[:, 1], 0.0, height - 1.0)
    x0 = np.floor(u).astype(np.int64)
    y0 = np.floor(v).astype(np.int64)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = (u - x0).astype(np.float32)[:, None]
    fy = (v - y0).astype(np.float32)[:, None]

    f00 = feature_map[(y0, x0)]
    f01 = feature_map[(y0, x1)]
    f10 = feature_map[(y1, x0)]
    f11 = feature_map[(y1, x1)]
    top = f00 * (1.0 - fx) + f01 * fx
    bottom = f10 * (1.0 - fx) + f11 * fx
    return top * (1.0 - fy) + bottom * fy


@dataclass
class FetchedFeatures:
    """Per-view data gathered for a block of sampled points.

    Shapes use S = #source views, R = rays, P = points per ray.
    """

    features: Tensor        # (S, R, P, C) interpolated scene features
    rgb: np.ndarray         # (S, R, P, 3) interpolated source colours
    direction_delta: np.ndarray  # (S, R, P, 4) view-direction differences
    visibility: np.ndarray  # (S, R, P) bool: point projects inside view

    @property
    def num_views(self) -> int:
        return self.features.shape[0]


def direction_features(points: np.ndarray, ray_dirs: np.ndarray,
                       source: Camera) -> np.ndarray:
    """IBRNet-style relative direction encoding, (R, P, 4).

    Concatenates the difference between the target ray direction and the
    unit vector from the source camera to the point, plus their dot
    product — the cue for weighting views by angular proximity.
    """
    to_point = points - source.center
    norms = np.linalg.norm(to_point, axis=-1, keepdims=True)
    source_dirs = to_point / np.maximum(norms, 1e-9)
    target_dirs = np.broadcast_to(ray_dirs[:, None, :], points.shape)
    diff = target_dirs - source_dirs
    dot = np.sum(target_dirs * source_dirs, axis=-1, keepdims=True)
    return np.concatenate([diff, dot], axis=-1).astype(np.float32)


def fetch_features(points: np.ndarray, ray_dirs: np.ndarray,
                   source_cameras: Sequence[Camera],
                   feature_maps: Sequence[Tensor],
                   source_images: np.ndarray,
                   feature_scale: float = 0.5) -> FetchedFeatures:
    """Acquire scene features for (R, P, 3) sampled points from all views.

    ``source_images`` is (S, 3, H, W) in [0, 1]; ``feature_maps`` are the
    channel-last encoder outputs, one per view.
    """
    num_views = len(source_cameras)
    rays, pts_per_ray = points.shape[0], points.shape[1]
    flat_points = points.reshape(-1, 3)

    view_features = []
    view_rgb = np.empty((num_views, rays, pts_per_ray, 3), dtype=np.float32)
    view_dirs = np.empty((num_views, rays, pts_per_ray, 4), dtype=np.float32)
    view_visible = np.empty((num_views, rays, pts_per_ray), dtype=bool)

    for index, camera in enumerate(source_cameras):
        pixels, depth = camera.project(flat_points, return_depth=True)
        finite = np.isfinite(pixels).all(axis=-1) & (depth > 1e-6)
        safe_pixels = np.where(finite[:, None], pixels, 0.0)

        feature_pixels = safe_pixels * feature_scale
        gathered = bilinear_gather(feature_maps[index], feature_pixels)
        view_features.append(
            gathered.reshape(rays, pts_per_ray, gathered.shape[-1]))

        image_hwc = np.ascontiguousarray(
            np.transpose(source_images[index], (1, 2, 0)).astype(np.float32))
        rgb = _bilinear_numpy(image_hwc, safe_pixels)
        view_rgb[index] = rgb.reshape(rays, pts_per_ray, 3)

        view_dirs[index] = direction_features(points, ray_dirs, camera)
        inside = (finite
                  & (pixels[:, 0] >= 0) & (pixels[:, 0] <= camera.intrinsics.width - 1)
                  & (pixels[:, 1] >= 0) & (pixels[:, 1] <= camera.intrinsics.height - 1))
        view_visible[index] = inside.reshape(rays, pts_per_ray)

    stacked = concatenate([f.expand_dims(0) for f in view_features], axis=0)
    return FetchedFeatures(features=stacked, rgb=view_rgb,
                           direction_delta=view_dirs, visibility=view_visible)


def _bilinear_numpy(image_hwc: np.ndarray, pixels: np.ndarray) -> np.ndarray:
    """Plain-numpy bilinear sample of an (H, W, C) array at (N, 2) pixels."""
    height, width = image_hwc.shape[:2]
    u = np.clip(pixels[:, 0], 0.0, width - 1.0)
    v = np.clip(pixels[:, 1], 0.0, height - 1.0)
    x0 = np.floor(u).astype(np.int64)
    y0 = np.floor(v).astype(np.int64)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = (u - x0)[:, None]
    fy = (v - y0)[:, None]
    top = image_hwc[y0, x0] * (1 - fx) + image_hwc[y0, x1] * fx
    bottom = image_hwc[y1, x0] * (1 - fx) + image_hwc[y1, x1] * fx
    return (top * (1 - fy) + bottom * fy).astype(np.float32)


def feature_access_bytes(height: int, width: int, points_per_ray: float,
                         num_views: int, feature_dim: int,
                         bytes_per_element: int = 1) -> float:
    """The paper's headline access count H*W*P*S*D (Sec. 1) in bytes.

    Bilinear interpolation touches 4 corners, but a cache/buffer with any
    locality coalesces them; the paper counts one D-vector per (point,
    view), which we follow.
    """
    return float(height) * width * points_per_ray * num_views * feature_dim \
        * bytes_per_element
