"""Training loop (paper Sec. 5.1) for the generalizable NeRF variants.

The paper trains for 250K Adam steps (lr 5e-4, exponential decay) on a
multi-dataset corpus; offline we run short numpy-scale schedules on
procedural scenes.  The loop structure is faithful: sample a scene,
sample a batch of rays of a held-out target view, render with the model
under its own sampling strategy, and minimise the MSE of Eq. 3.  A
per-scene finetuning entry point reproduces the Table 3 protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..geometry.rays import RayBundle, rays_for_pixels, stratified_depths
from ..scenes.datasets import Scene
from ..scenes.render_gt import render_rays as render_gt_rays
from .gen_nerf import GenNeRF
from .ibrnet import GeneralizableNeRF
from .renderer import render_source_views
from .volume_rendering import composite


@dataclass
class TrainConfig:
    """Hyper-parameters for the (scaled-down) training runs."""

    steps: int = 200
    rays_per_batch: int = 48
    num_points: int = 24          # per-ray samples for baseline models
    learning_rate: float = 5e-4
    lr_decay_rate: float = 0.5
    lr_decay_steps: int = 2000
    gt_points: int = 128          # reference quadrature for supervision
    coarse_loss_weight: float = 0.3
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class SceneData:
    """A scene plus everything precomputed for training against it."""

    scene: Scene
    source_images: np.ndarray      # (S, 3, H, W)

    @staticmethod
    def prepare(scene: Scene, gt_points: int = 128) -> "SceneData":
        return SceneData(scene=scene,
                         source_images=render_source_views(
                             scene, num_points=gt_points))


def sample_pixel_batch(scene: Scene, count: int,
                       rng: np.random.Generator) -> RayBundle:
    """Random pixel rays of the scene's target view."""
    width = scene.target_camera.intrinsics.width
    height = scene.target_camera.intrinsics.height
    us = rng.uniform(0.5, width - 0.5, size=count)
    vs = rng.uniform(0.5, height - 0.5, size=count)
    pixels = np.stack([us, vs], axis=-1)
    return rays_for_pixels(scene.target_camera, pixels, scene.near, scene.far)


class Trainer:
    """Shared training driver for baseline and Gen-NeRF models."""

    def __init__(self, model: nn.Module, scenes: Sequence[SceneData],
                 config: Optional[TrainConfig] = None):
        if not scenes:
            raise ValueError("need at least one scene")
        self.model = model
        self.scenes = list(scenes)
        self.config = config or TrainConfig()
        schedule = nn.ExponentialDecayLR(self.config.learning_rate,
                                         self.config.lr_decay_rate,
                                         self.config.lr_decay_steps)
        self.optimizer = nn.Adam(model.parameters(), schedule=schedule)
        self.rng = np.random.default_rng(self.config.seed)
        self.history: List[float] = []

    # ------------------------------------------------------------------
    def _ground_truth(self, scene_data: SceneData,
                      bundle: RayBundle) -> np.ndarray:
        return render_gt_rays(
            scene_data.scene.field, bundle, self.config.gt_points,
            white_background=scene_data.scene.spec.white_background)

    def _loss_ibrnet(self, model: GeneralizableNeRF, scene_data: SceneData,
                     bundle: RayBundle, target: np.ndarray):
        feature_maps = model.encode_scene(scene_data.source_images)
        depths = stratified_depths(self.rng, len(bundle),
                                   self.config.num_points, bundle.near,
                                   bundle.far, jitter=True)
        points = bundle.points_at(depths)
        output = model(points, bundle.directions,
                       scene_data.scene.source_cameras, feature_maps,
                       scene_data.source_images)
        pixel, _ = composite(output.sigma, output.rgb, depths, bundle.far)
        return nn.functional.mse_loss(pixel, target.astype(np.float32))

    def _loss_gen_nerf(self, model: GenNeRF, scene_data: SceneData,
                       bundle: RayBundle, target: np.ndarray):
        coarse_maps, fine_maps = model.encode_scene(scene_data.source_images)
        coarse_depths, coarse_weights, coarse_out = model.coarse_pass(
            bundle, scene_data.scene.source_cameras, coarse_maps,
            scene_data.source_images, rng=self.rng)
        samples = model.plan_samples(coarse_depths, coarse_weights, bundle,
                                     rng=self.rng, min_points=2)
        pixel, _, _ = model.fine_pass(bundle, samples,
                                      scene_data.scene.source_cameras,
                                      fine_maps, scene_data.source_images)
        loss = nn.functional.mse_loss(pixel, target.astype(np.float32))
        # Auxiliary coarse loss (vanilla-NeRF style) trains the coarse
        # density estimator that steers the sampler.
        coarse_pixel, _ = composite(coarse_out.sigma, coarse_out.rgb,
                                    coarse_depths, bundle.far)
        coarse_loss = nn.functional.mse_loss(coarse_pixel,
                                             target.astype(np.float32))
        return loss + self.config.coarse_loss_weight * coarse_loss

    # ------------------------------------------------------------------
    def step(self) -> float:
        scene_data = self.scenes[self.rng.integers(0, len(self.scenes))]
        bundle = sample_pixel_batch(scene_data.scene,
                                    self.config.rays_per_batch, self.rng)
        target = self._ground_truth(scene_data, bundle)

        self.optimizer.zero_grad()
        if isinstance(self.model, GenNeRF):
            loss = self._loss_gen_nerf(self.model, scene_data, bundle, target)
        else:
            loss = self._loss_ibrnet(self.model, scene_data, bundle, target)
        loss.backward()
        nn.clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
        self.optimizer.step()
        value = loss.item()
        self.history.append(value)
        return value

    def fit(self, steps: Optional[int] = None,
            log_every: int = 0) -> List[float]:
        total = steps if steps is not None else self.config.steps
        start = time.time()
        for index in range(total):
            value = self.step()
            if log_every and (index + 1) % log_every == 0:
                elapsed = time.time() - start
                print(f"step {index + 1:5d}/{total} loss={value:.5f} "
                      f"({elapsed:.1f}s)")
        return self.history


def finetune(model: nn.Module, scene: Scene, steps: int,
             config: Optional[TrainConfig] = None,
             gt_points: int = 128,
             data: Optional[SceneData] = None) -> List[float]:
    """Per-scene finetuning (paper Table 3 protocol): continue training
    the pretrained model on a single scene's views.

    ``data`` accepts an already-prepared :class:`SceneData` so harnesses
    that finetune many variants on the same scene render its ground-truth
    source views once instead of once per call.
    """
    cfg = config or TrainConfig()
    if data is None:
        data = SceneData.prepare(scene, gt_points=gt_points)
    trainer = Trainer(model, [data], cfg)
    return trainer.fit(steps)
