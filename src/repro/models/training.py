"""Training loop (paper Sec. 5.1) for the generalizable NeRF variants.

The paper trains for 250K Adam steps (lr 5e-4, exponential decay) on a
multi-dataset corpus; offline we run short numpy-scale schedules on
procedural scenes.  The loop structure is faithful: sample a scene,
sample a batch of rays of a held-out target view, render with the model
under its own sampling strategy, and minimise the MSE of Eq. 3.  A
per-scene finetuning entry point reproduces the Table 3 protocol.

Training fast path
------------------
Three amortisations keep short numpy runs honest about where compute
goes (the paper's own thesis: stop recomputing per step what the scene
fixes once):

* **Supervision reuse** — the trainer draws scene choices and pixel
  batches from a dedicated ``pixel_rng`` stream in blocks of
  ``TrainConfig.pixel_block_steps`` steps, renders the ground-truth
  quadrature (Eq. 2 at ``gt_points``) for a whole block's rays of each
  scene in one call, and caches the result on the
  :class:`SceneData` keyed by ``(seed, scene position, block, batch
  geometry)``.  Harnesses that train several variants with the same
  schedule on shared :class:`SceneData` (Tables 2/3) then pay the GT
  reference render once, not once per variant.  Per-ray quadrature is
  ray-independent, so blocked GT is bit-identical to per-step GT
  (pinned in ``tests/models/test_training_equivalence.py``).
* **Scene-level encoder cache** — each loss step runs under
  :class:`repro.nn.conv_patch_cache` over ``SceneData.conv_cache``, so
  every conv layer with the same (kernel, stride, padding) over the
  scene's source images (the Gen-NeRF coarse/fine encoder pair, and
  every model variant trained on the scene) shares one im2col per
  scene per process.  ``SceneData.encoded_maps`` additionally caches
  full encoded feature maps for *evaluation* paths, invalidated via
  ``Parameter.version`` — i.e. only when an optimiser actually updated
  an encoder parameter (gradients flowed), not merely because a step
  ran somewhere.
* **Fused optimisation** — gradient clipping is folded into the fused
  flat-buffer :class:`repro.nn.Adam` (``grad_clip=``), removing the
  per-parameter Python loops from the update.

The unfused, per-step seed implementation of this loop is preserved as
:func:`repro.perf.reference.trainer_fit_loop`; the equivalence suite
pins losses and final weights bit-identical against it.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..geometry.rays import RayBundle, rays_for_pixels, stratified_depths
from ..scenes.datasets import Scene
from ..scenes.render_gt import render_rays as render_gt_rays
from .features import fetched_pixel_mask
from .footprint import (FOOTPRINT_STATS, footprint_enabled,
                        plan_conv_footprint)
from .gen_nerf import GenNeRF
from .ibrnet import GeneralizableNeRF
from .renderer import render_source_views
from .volume_rendering import composite

_LOG = logging.getLogger("repro.models.training")


@dataclass
class TrainConfig:
    """Hyper-parameters for the (scaled-down) training runs."""

    steps: int = 200
    rays_per_batch: int = 48
    num_points: int = 24          # per-ray samples for baseline models
    learning_rate: float = 5e-4
    lr_decay_rate: float = 0.5
    lr_decay_steps: int = 2000
    gt_points: int = 128          # reference quadrature for supervision
    coarse_loss_weight: float = 0.3
    grad_clip: float = 5.0
    seed: int = 0
    pixel_block_steps: int = 16   # pixel batches pre-generated per block


def _encoder_parameters(model: nn.Module) -> List[nn.Parameter]:
    """The parameters whose updates invalidate encoded feature maps."""
    if isinstance(model, GenNeRF):
        return (model.coarse.encoder.parameters()
                + model.fine.encoder.parameters())
    encoder = getattr(model, "encoder", None)
    if encoder is not None:
        return encoder.parameters()
    return model.parameters()


@dataclass
class SceneData:
    """A scene plus everything precomputed for training against it.

    Beyond the rendered source images, a ``SceneData`` owns the
    scene-keyed caches of the training fast path:

    * ``conv_cache`` — im2col columns of the source images, shared by
      every conv layer (and model) encoding this scene
      (:class:`repro.nn.conv_patch_cache`);
    * ``gt_cache`` — ground-truth supervision per (trainer schedule,
      pixel block);
    * ``feature_cache`` — encoded feature maps for evaluation renders,
      invalidated by encoder ``Parameter.version`` bumps (i.e. only
      when gradients actually flowed into the encoder).
    """

    scene: Scene
    source_images: np.ndarray      # (S, 3, H, W)
    conv_cache: Dict = field(default_factory=dict, repr=False)
    gt_cache: Dict = field(default_factory=dict, repr=False)
    feature_cache: Dict = field(default_factory=dict, repr=False)

    @staticmethod
    def prepare(scene: Scene, gt_points: int = 128,
                workers: Optional[int] = 1) -> "SceneData":
        """Render the conditioning source views (the minutes-scale cold
        path).  ``workers`` shards the render over the frame pool —
        byte-identical images at any width (see
        :func:`repro.models.renderer.render_source_views`)."""
        return SceneData(scene=scene,
                         source_images=render_source_views(
                             scene, num_points=gt_points,
                             workers=workers))

    def encoded_maps(self, model: nn.Module):
        """Cached ``model.encode_scene(source_images)`` for evaluation.

        The entry is keyed by the model object (kept alive by the
        cache, so ids cannot alias) and validated against the version
        tuple of the model's *encoder* parameters: a finetune step that
        updated the encoder re-encodes, a head-only update would not.
        Inference-mode maps carry no graph — training losses must not
        consume them.
        """
        versions = tuple(p.version for p in _encoder_parameters(model))
        entry = self.feature_cache.get(id(model))
        if entry is not None and entry[0] is model and entry[1] == versions \
                and entry[2] is self.source_images:
            return entry[3]
        with nn.inference_mode():
            maps = model.encode_scene(self.source_images)
        if len(self.feature_cache) >= 16:
            # Scene data can outlive many evaluated models (the scene
            # memo in repro.core.experiments); bound the held models.
            self.feature_cache.clear()
        self.feature_cache[id(model)] = (model, versions,
                                         self.source_images, maps)
        return maps


def sample_pixel_batch(scene: Scene, count: int,
                       rng: np.random.Generator) -> RayBundle:
    """Random pixel rays of the scene's target view."""
    width = scene.target_camera.intrinsics.width
    height = scene.target_camera.intrinsics.height
    us = rng.uniform(0.5, width - 0.5, size=count)
    vs = rng.uniform(0.5, height - 0.5, size=count)
    pixels = np.stack([us, vs], axis=-1)
    return rays_for_pixels(scene.target_camera, pixels, scene.near, scene.far)


def draw_pixel_block(scenes: Sequence[SceneData], config: TrainConfig,
                     pixel_rng: np.random.Generator
                     ) -> List[Tuple[int, np.ndarray]]:
    """Draw one block of (scene index, pixel batch) pairs.

    This is the canonical pixel-stream protocol shared by the fast
    trainer and the seed reference loop: per block, one ``integers``
    draw for all scene choices, then per step one ``uniform`` draw per
    pixel coordinate.  Pixel values for a given scene position depend
    only on the stream position and that scene's target camera, so
    ground truth cached under the block key stays valid across
    trainers with the same schedule.
    """
    count = config.rays_per_batch
    indices = pixel_rng.integers(0, len(scenes), size=config.pixel_block_steps)
    entries: List[Tuple[int, np.ndarray]] = []
    for scene_pos in indices:
        scene = scenes[int(scene_pos)].scene
        width = scene.target_camera.intrinsics.width
        height = scene.target_camera.intrinsics.height
        us = pixel_rng.uniform(0.5, width - 0.5, size=count)
        vs = pixel_rng.uniform(0.5, height - 0.5, size=count)
        entries.append((int(scene_pos), np.stack([us, vs], axis=-1)))
    return entries


class Trainer:
    """Shared training driver for baseline and Gen-NeRF models."""

    def __init__(self, model: nn.Module, scenes: Sequence[SceneData],
                 config: Optional[TrainConfig] = None,
                 footprint: Optional[bool] = None):
        if not scenes:
            raise ValueError("need at least one scene")
        self.model = model
        self.scenes = list(scenes)
        self.config = config or TrainConfig()
        # ``footprint`` forces the footprint-restricted training encode
        # on/off; the default defers to the ``REPRO_FOOTPRINT`` knob
        # (see :mod:`repro.models.footprint`).  Either way the training
        # trajectory is byte-identical — the knob only picks which
        # equivalent compute layout runs the encoder.
        self._footprint = footprint
        self.footprint_stats = {"footprint": 0, "dense": 0, "coverage": 0.0}
        schedule = nn.ExponentialDecayLR(self.config.learning_rate,
                                         self.config.lr_decay_rate,
                                         self.config.lr_decay_steps)
        self.optimizer = nn.Adam(model.parameters(), schedule=schedule,
                                 grad_clip=self.config.grad_clip)
        # Two independent streams: ``pixel_rng`` drives scene choice and
        # pixel batches (pre-generated blockwise), ``rng`` drives the
        # model-side randomness (depth jitter, focused sampling) whose
        # draw counts depend on model state and therefore cannot be
        # hoisted.
        self.rng = np.random.default_rng(self.config.seed)
        self.pixel_rng = np.random.default_rng((self.config.seed, 0x5EED))
        self.history: List[float] = []
        self._step_index = 0
        self._remaining_hint: Optional[int] = None
        self._block: List[List] = []   # [scene_pos, bundle, target] rows

    # ------------------------------------------------------------------
    def _ground_truth(self, scene_data: SceneData,
                      bundle: RayBundle) -> np.ndarray:
        return render_gt_rays(
            scene_data.scene.field, bundle, self.config.gt_points,
            white_background=scene_data.scene.spec.white_background)

    def _gt_block_key(self, scene_pos: int, block_index: int) -> tuple:
        cfg = self.config
        return (cfg.seed, len(self.scenes), scene_pos, block_index,
                cfg.pixel_block_steps, cfg.rays_per_batch, cfg.gt_points)

    def _advance_block(self) -> None:
        """Pre-generate the next block of pixel batches + supervision.

        The pixel draws always cover the whole block (stream fidelity —
        a later ``fit`` must resume mid-block bit-exactly), but ground
        truth is only rendered for the steps :meth:`fit` says it will
        actually take (``_remaining_hint``); a run ending mid-block
        does not pay quadrature for steps it never reaches.  Rendering
        happens per scene in one call over the needed steps' rays and
        is cached per (schedule, block) offset-by-offset on the scene,
        so identically scheduled trainers (the Table 2/3 variant
        ladders) — including ones that stopped mid-block — reuse and
        extend each other's supervision instead of re-rendering.
        """
        cfg = self.config
        entries = draw_pixel_block(self.scenes, cfg, self.pixel_rng)
        self._block = []
        for scene_pos, pixels in entries:
            data = self.scenes[scene_pos]
            bundle = rays_for_pixels(data.scene.target_camera, pixels,
                                     data.scene.near, data.scene.far)
            self._block.append([scene_pos, bundle, None])
        needed = len(entries) if self._remaining_hint is None \
            else min(len(entries), self._remaining_hint)
        self._fill_targets(range(needed))

    def _fill_targets(self, offsets) -> None:
        """Render (or fetch cached) supervision for block offsets."""
        cfg = self.config
        block_index = self._step_index // cfg.pixel_block_steps
        count = cfg.rays_per_batch
        pending = [offset for offset in offsets
                   if self._block[offset][2] is None]
        for scene_pos in sorted({self._block[j][0] for j in pending}):
            data = self.scenes[scene_pos]
            steps = [j for j in pending if self._block[j][0] == scene_pos]
            key = self._gt_block_key(scene_pos, block_index)
            cached = data.gt_cache.get(key)
            if cached is None:
                if len(data.gt_cache) >= 512:
                    # Block keys are per (schedule, block index) and a
                    # paper-scale run would otherwise accumulate GT for
                    # every block it ever trained; reuse only spans
                    # identically scheduled runs, so dropping the lot
                    # costs a re-render, never correctness.
                    data.gt_cache.clear()
                cached = {}
                data.gt_cache[key] = cached
            missing = [j for j in steps if j not in cached]
            if missing:
                pixels = np.concatenate(
                    [self._block[j][1].pixels for j in missing], axis=0)
                bundle = rays_for_pixels(data.scene.target_camera, pixels,
                                         data.scene.near, data.scene.far)
                block_gt = self._ground_truth(data, bundle)
                for k, j in enumerate(missing):
                    cached[j] = block_gt[k * count:(k + 1) * count]
            for j in steps:
                self._block[j][2] = cached[j]

    def _encode_footprint(self, encoder, scene_data: SceneData, groups):
        """Encode ``scene_data.source_images`` restricted to the feature
        pixels this step will actually gather.

        ``groups`` lists ``(cameras, view_indices_or_None, points)``
        gathers the step is about to perform; the union of their
        bilinear corner sets is the footprint.  Falls back to the dense
        :meth:`ConvEncoder.encode_views` when the footprint cannot be
        restricted profitably (planner returns ``None``) or is
        trivially dense (cheap ray-count guard) — the dense path
        produces the same bits, so the choice is pure performance.
        """
        images = scene_data.source_images
        num_views = images.shape[0]
        height, width = images.shape[2], images.shape[3]
        map_h, map_w = encoder.feature_shape(height, width)
        cells = num_views * map_h * map_w
        candidates = 4 * sum(len(cams) * points.shape[0] * points.shape[1]
                             for cams, _, points in groups)
        plan = None
        if 2 * candidates < cells:
            mask = np.zeros((num_views, map_h, map_w), dtype=bool)
            for cams, view_idx, points in groups:
                part = fetched_pixel_mask(points, cams, map_h, map_w,
                                          encoder.feature_scale)
                if view_idx is None:
                    mask |= part
                else:
                    mask[view_idx] |= part
            plan = plan_conv_footprint(encoder.convs, num_views, height,
                                       width, mask)
        if plan is None:
            self.footprint_stats["dense"] += 1
            FOOTPRINT_STATS["dense"] += 1
            return encoder.encode_views(images)
        self.footprint_stats["footprint"] += 1
        self.footprint_stats["coverage"] += plan.coverage
        FOOTPRINT_STATS["footprint"] += 1
        return encoder.encode_views_footprint(images, plan)

    def _use_footprint(self) -> bool:
        return footprint_enabled(self._footprint)

    def _loss_ibrnet(self, model: GeneralizableNeRF, scene_data: SceneData,
                     bundle: RayBundle, target: np.ndarray):
        # Depths are drawn *before* the encode so the footprint planner
        # can see the step's sample points; the encode consumes no RNG,
        # so the stream is bit-identical to the draw-after-encode order.
        depths = stratified_depths(self.rng, len(bundle),
                                   self.config.num_points, bundle.near,
                                   bundle.far, jitter=True)
        points = bundle.points_at(depths)
        cameras = scene_data.scene.source_cameras
        if self._use_footprint():
            feature_maps = self._encode_footprint(
                model.encoder, scene_data, [(cameras, None, points)])
        else:
            feature_maps = model.encode_scene(scene_data.source_images)
        output = model(points, bundle.directions, cameras, feature_maps,
                       scene_data.source_images)
        pixel, _ = composite(output.sigma, output.rgb, depths, bundle.far)
        return nn.functional.mse_loss(pixel, target.astype(np.float32))

    def _loss_gen_nerf(self, model: GenNeRF, scene_data: SceneData,
                       bundle: RayBundle, target: np.ndarray):
        cameras = scene_data.scene.source_cameras
        if self._use_footprint():
            cfg = model.config
            # Pre-draw the coarse depths (first RNG consumer of the
            # step) so both encodes can be footprint-planned; the
            # stream order is unchanged because encoding draws nothing.
            coarse_depths = stratified_depths(
                self.rng, len(bundle), cfg.coarse_points, bundle.near,
                bundle.far, jitter=True)
            chosen = model.select_coarse_views(bundle, cameras)
            coarse_cams = [cameras[i] for i in chosen]
            coarse_points = bundle.points_at(coarse_depths)
            coarse_maps = self._encode_footprint(
                model.coarse.encoder, scene_data,
                [(coarse_cams, chosen, coarse_points)])
            coarse_out_tuple = model.coarse_pass(
                bundle, cameras, coarse_maps, scene_data.source_images,
                rng=self.rng, depths=coarse_depths)
            coarse_depths, coarse_weights, coarse_out = coarse_out_tuple
            samples = model.plan_samples(coarse_depths, coarse_weights,
                                         bundle, rng=self.rng, min_points=2)
            fine_points = bundle.points_at(samples.depths)
            fine_maps = self._encode_footprint(
                model.fine.encoder, scene_data,
                [(cameras, None, fine_points)])
        else:
            coarse_maps, fine_maps = model.encode_scene(
                scene_data.source_images)
            coarse_depths, coarse_weights, coarse_out = model.coarse_pass(
                bundle, cameras, coarse_maps,
                scene_data.source_images, rng=self.rng)
            samples = model.plan_samples(coarse_depths, coarse_weights,
                                         bundle, rng=self.rng, min_points=2)
        pixel, _, _ = model.fine_pass(bundle, samples, cameras,
                                      fine_maps, scene_data.source_images)
        loss = nn.functional.mse_loss(pixel, target.astype(np.float32))
        # Auxiliary coarse loss (vanilla-NeRF style) trains the coarse
        # density estimator that steers the sampler.
        coarse_pixel, _ = composite(coarse_out.sigma, coarse_out.rgb,
                                    coarse_depths, bundle.far)
        coarse_loss = nn.functional.mse_loss(coarse_pixel,
                                             target.astype(np.float32))
        return loss + self.config.coarse_loss_weight * coarse_loss

    # ------------------------------------------------------------------
    def step(self) -> float:
        offset = self._step_index % self.config.pixel_block_steps
        if offset == 0:
            self._advance_block()
        if self._block[offset][2] is None:
            # A previous fit() ended mid-block; render supervision for
            # the steps this fit will take (or just this one, stepping
            # manually).
            stop = len(self._block) if self._remaining_hint is None \
                else min(len(self._block), offset + self._remaining_hint)
            self._fill_targets(range(offset, max(stop, offset + 1)))
        scene_pos, bundle, target = self._block[offset]
        scene_data = self.scenes[scene_pos]

        self.optimizer.zero_grad()
        with nn.conv_patch_cache(scene_data.conv_cache):
            if isinstance(self.model, GenNeRF):
                loss = self._loss_gen_nerf(self.model, scene_data, bundle,
                                           target)
            else:
                loss = self._loss_ibrnet(self.model, scene_data, bundle,
                                         target)
            loss.backward()
        self.optimizer.step()        # grad clip + LR schedule folded in
        self._step_index += 1
        value = loss.item()
        self.history.append(value)
        return value

    def fit(self, steps: Optional[int] = None,
            log_every: int = 0) -> List[float]:
        total = steps if steps is not None else self.config.steps
        start = time.time()
        for index in range(total):
            self._remaining_hint = total - index
            value = self.step()
            if log_every and (index + 1) % log_every == 0:
                elapsed = time.time() - start
                print(f"step {index + 1:5d}/{total} loss={value:.5f} "
                      f"({elapsed:.1f}s)")
        self._remaining_hint = None
        footprint_steps = self.footprint_stats["footprint"]
        if footprint_steps or self.footprint_stats["dense"]:
            from ..core import log
            log.event(
                _LOG, "train.encode_footprint", level=logging.INFO,
                footprint=footprint_steps,
                dense=self.footprint_stats["dense"],
                mean_coverage=round(
                    self.footprint_stats["coverage"] / footprint_steps, 4)
                if footprint_steps else None)
        return self.history


def finetune(model: nn.Module, scene: Scene, steps: int,
             config: Optional[TrainConfig] = None,
             gt_points: int = 128,
             data: Optional[SceneData] = None) -> List[float]:
    """Per-scene finetuning (paper Table 3 protocol): continue training
    the pretrained model on a single scene's views.

    ``data`` accepts an already-prepared :class:`SceneData` so harnesses
    that finetune many variants on the same scene render its ground-truth
    source views once instead of once per call — and, through the
    ``SceneData`` caches, share GT supervision and im2col columns
    between identically scheduled finetunes.
    """
    cfg = config or TrainConfig()
    if data is None:
        data = SceneData.prepare(scene, gt_points=gt_points)
    trainer = Trainer(model, [data], cfg)
    return trainer.fit(steps)
