"""``repro.geometry`` — cameras, rays, epipolar geometry, and frusta.

Implements the geometric substrate of the paper: the projection pipeline
of generalizable NeRFs (Sec. 2.2 Steps 1–2) and the epipolar analysis
(Sec. 4.1–4.3) the accelerator dataflow is built on.
"""

from .camera import Camera, Intrinsics
from .epipolar import (EpipolarPair, epipolar_line, epipole_in_novel,
                       epipole_in_source, essential_matrix,
                       fundamental_matrix, group_rays_by_epipolar_lines,
                       pixels_through_epipole, point_line_distance,
                       relative_pose, skew)
from .frustum import (Footprint, PatchRegion, convex_hull_area,
                      depth_of_bin, frustum_corners, patch_memory_footprint,
                      project_frustum)
from .rays import (RayBundle, image_shape_for_step, rays_for_image,
                   rays_for_pixels, stratified_depths)
from .transforms import (camera_at, forward_facing_cameras, look_at,
                         normalize, orbit_cameras, rotation_about_axis)

__all__ = [
    "Camera", "Intrinsics",
    "EpipolarPair", "skew", "relative_pose", "essential_matrix",
    "fundamental_matrix", "epipole_in_source", "epipole_in_novel",
    "epipolar_line", "point_line_distance", "pixels_through_epipole",
    "group_rays_by_epipolar_lines",
    "PatchRegion", "Footprint", "frustum_corners", "project_frustum",
    "convex_hull_area", "depth_of_bin", "patch_memory_footprint",
    "RayBundle", "rays_for_pixels", "rays_for_image", "stratified_depths",
    "image_shape_for_step",
    "look_at", "camera_at", "orbit_cameras", "forward_facing_cameras",
    "normalize", "rotation_about_axis",
]
