"""Epipolar geometry between a novel view and source views (paper Sec. 4.1).

The Gen-NeRF accelerator's dataflow is justified by three properties the
paper deduces from two-view geometry (Hartley & Zisserman):

* **Property-1** — the projections of all sampled 3D points along one ray
  lie on a single *epipolar line* in each source view.
* **Property-2** — novel-view pixels collinear with the epipole ``e_n``
  share one epipolar plane, hence one epipolar line per source view.
* **Property-3** — 3D points that are close in space project to close
  epipolar lines / regions on every source view.

This module implements the machinery (essential/fundamental matrices,
epipoles, epipolar lines, point-line distances) and exposes executable
checks of the properties, which the test suite verifies on random camera
pairs and which the workload scheduler uses to group rays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .camera import Camera


def skew(vector: np.ndarray) -> np.ndarray:
    """The cross-product matrix [v]_x with [v]_x w = v × w."""
    x, y, z = np.asarray(vector, dtype=np.float64).reshape(3)
    return np.array([[0.0, -z, y],
                     [z, 0.0, -x],
                     [-y, x, 0.0]])


def relative_pose(source: Camera, novel: Camera) -> Tuple[np.ndarray, np.ndarray]:
    """(R_rel, t_rel) mapping novel-camera coordinates into source-camera
    coordinates: ``x_s = R_rel @ x_n + t_rel``."""
    r_rel = source.rotation @ novel.rotation.T
    t_rel = source.translation - r_rel @ novel.translation
    return r_rel, t_rel


def essential_matrix(source: Camera, novel: Camera) -> np.ndarray:
    """Essential matrix E with x_s_cam^T E x_n_cam = 0 (normalised coords)."""
    r_rel, t_rel = relative_pose(source, novel)
    return skew(t_rel) @ r_rel


def fundamental_matrix(source: Camera, novel: Camera) -> np.ndarray:
    """Fundamental matrix F with ``p_s^T F p_n = 0`` for corresponding
    homogeneous pixels p_n (novel view) and p_s (source view)."""
    essential = essential_matrix(source, novel)
    k_s_inv = source.intrinsics.inverse
    k_n_inv = novel.intrinsics.inverse
    return k_s_inv.T @ essential @ k_n_inv


def epipole_in_source(source: Camera, novel: Camera) -> np.ndarray:
    """Pixel location e_s: the novel camera centre seen from the source.

    May lie far outside the image (or at infinity for parallel motion);
    returned as an unnormalised homogeneous 3-vector to stay robust.
    """
    center_h = np.append(novel.center, 1.0)
    return source.projection_matrix @ center_h


def epipole_in_novel(source: Camera, novel: Camera) -> np.ndarray:
    """Homogeneous pixel e_n: the source camera centre seen from the
    novel view."""
    center_h = np.append(source.center, 1.0)
    return novel.projection_matrix @ center_h


def epipolar_line(fundamental: np.ndarray, pixel_novel: np.ndarray) -> np.ndarray:
    """Line coefficients l = F p_n (ax + by + c = 0) in the source view."""
    pix = np.asarray(pixel_novel, dtype=np.float64)
    if pix.shape[-1] == 2:
        pix = np.concatenate([pix, np.ones(pix.shape[:-1] + (1,))], axis=-1)
    return pix @ fundamental.T


def point_line_distance(line: np.ndarray, pixel: np.ndarray) -> np.ndarray:
    """Perpendicular pixel distance from points to lines (broadcasting)."""
    line = np.asarray(line, dtype=np.float64)
    pix = np.asarray(pixel, dtype=np.float64)
    if pix.shape[-1] == 2:
        pix = np.concatenate([pix, np.ones(pix.shape[:-1] + (1,))], axis=-1)
    numer = np.abs(np.sum(line * pix, axis=-1))
    denom = np.linalg.norm(line[..., :2], axis=-1)
    return numer / np.maximum(denom, 1e-12)


@dataclass
class EpipolarPair:
    """Cached two-view geometry between one novel view and one source view."""

    novel: Camera
    source: Camera

    def __post_init__(self):
        self.fundamental = fundamental_matrix(self.source, self.novel)
        self.epipole_source = epipole_in_source(self.source, self.novel)
        self.epipole_novel = epipole_in_novel(self.source, self.novel)

    def line_for_pixel(self, pixel_novel: np.ndarray) -> np.ndarray:
        return epipolar_line(self.fundamental, pixel_novel)

    # -- executable forms of the paper's properties ---------------------
    def property1_residual(self, pixel_novel: np.ndarray,
                           depths: np.ndarray) -> np.ndarray:
        """Max distance from projected ray samples to the epipolar line.

        Zero (up to float error) certifies Property-1 for this pixel.
        """
        from .rays import rays_for_pixels  # local import to avoid a cycle

        bundle = rays_for_pixels(self.novel, np.atleast_2d(pixel_novel),
                                 near=1e-3, far=1e3)
        points = bundle.points_at(np.atleast_2d(depths))
        projections = self.source.project(points)[0]
        line = self.line_for_pixel(np.atleast_2d(pixel_novel))[0]
        return point_line_distance(line, projections).max()

    def property2_line_spread(self, pixels_novel: np.ndarray) -> float:
        """Angle spread (radians) among epipolar lines of several pixels.

        When the pixels are collinear with the epipole e_n the spread is
        ~0: they share a single epipolar line (Property-2).
        """
        lines = self.line_for_pixel(np.atleast_2d(pixels_novel))
        normals = lines[:, :2]
        normals = normals / np.linalg.norm(normals, axis=1, keepdims=True)
        # Lines are orientation-less: fold antipodal normals together.
        reference = normals[0]
        cosines = np.abs(normals @ reference)
        return float(np.arccos(np.clip(cosines, -1.0, 1.0)).max())

    def property3_projection_spread(self, points: np.ndarray) -> float:
        """Diameter (pixels) of the source-view footprint of a 3D point set.

        Property-3 says spatially small point sets yield small footprints;
        the scheduler's area calculator is built on exactly this measure.
        """
        projections = self.source.project(np.asarray(points))
        finite = np.isfinite(projections).all(axis=-1)
        projections = projections[finite]
        if len(projections) < 2:
            return 0.0
        diffs = projections[:, None, :] - projections[None, :, :]
        return float(np.linalg.norm(diffs, axis=-1).max())


def pixels_through_epipole(epipole_novel: np.ndarray, angle: float,
                           count: int, spacing: float = 6.0) -> np.ndarray:
    """Sample ``count`` collinear pixels on the line through the epipole
    e_n at direction ``angle`` — the single-source-view ray grouping of
    paper Sec. 4.2 (each such line is one ray group)."""
    epi = np.asarray(epipole_novel, dtype=np.float64)
    if epi.shape[-1] == 3:
        if abs(epi[2]) < 1e-12:
            # Epipole at infinity: lines "through" it are parallel lines
            # in direction epi[:2]; anchor one at the origin.
            base = np.zeros(2)
            direction = epi[:2] / np.linalg.norm(epi[:2])
        else:
            base = epi[:2] / epi[2]
            direction = np.array([np.cos(angle), np.sin(angle)])
    else:
        base = epi
        direction = np.array([np.cos(angle), np.sin(angle)])
    steps = (np.arange(count) + 1.0) * spacing
    return base[None, :] + steps[:, None] * direction[None, :]


def group_rays_by_epipolar_lines(novel: Camera, source: Camera,
                                 pixels: np.ndarray,
                                 num_groups: int = 16) -> np.ndarray:
    """Assign novel-view pixels to ray groups by epipolar-line angle.

    Implements the single-source-view dataflow of Sec. 4.2: pixels whose
    connecting line to the epipole e_n shares an angle bucket share (near)
    the same epipolar line and are scheduled together.  Returns an (R,)
    integer group id per pixel.
    """
    pair = EpipolarPair(novel, source)
    epi = pair.epipole_novel
    pix = np.asarray(pixels, dtype=np.float64)
    if abs(epi[2]) < 1e-12:
        direction = epi[:2] / np.linalg.norm(epi[:2])
        # Parallel-line pencil: bucket by signed perpendicular offset.
        normal = np.array([-direction[1], direction[0]])
        keys = pix @ normal
    else:
        center = epi[:2] / epi[2]
        angles = np.arctan2(pix[:, 1] - center[1], pix[:, 0] - center[0])
        # Lines are undirected: fold angle and angle+pi together.
        keys = np.mod(angles, np.pi)
    # Quantile bucketing keeps group sizes balanced even when the
    # epipole sits far outside the image (keys then span a tiny range) —
    # the hardware wants equal-sized ray groups to keep the engine fed.
    edges = np.quantile(keys, np.linspace(0, 1, num_groups + 1)[1:-1])
    return np.searchsorted(edges, keys).astype(int)
