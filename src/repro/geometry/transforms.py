"""Pose construction utilities: look-at matrices and camera rigs.

The dataset families in the paper use two rig styles: inward-facing
orbits around an object (NeRF-Synthetic, DeepVoxels) and roughly
forward-facing arrays (LLFF).  Both are generated here so the procedural
scenes in :mod:`repro.scenes` can reproduce the geometry of each family.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .camera import Camera, Intrinsics


def normalize(vector: np.ndarray) -> np.ndarray:
    """Unit-length copy of ``vector``; raises on zero input."""
    norm = np.linalg.norm(vector)
    if norm == 0:
        raise ValueError("cannot normalise a zero vector")
    return np.asarray(vector, dtype=np.float64) / norm


def look_at(eye: np.ndarray, target: np.ndarray,
            up: Optional[np.ndarray] = None) -> tuple:
    """World-to-camera (R, t) for a camera at ``eye`` looking at ``target``.

    Uses the OpenCV convention of :mod:`repro.geometry.camera`: +z is the
    viewing direction, +y points down in the image.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.array([0.0, 1.0, 0.0]) if up is None else np.asarray(up, float)

    forward = normalize(target - eye)          # camera +z in world
    side = np.cross(forward, up)
    if np.linalg.norm(side) < 1e-8:            # forward parallel to up
        side = np.cross(forward, np.array([1.0, 0.0, 0.0]))
    right = normalize(side)                    # camera +x in world
    down = np.cross(forward, right)            # camera +y in world
    rotation = np.stack([right, down, forward], axis=0)
    translation = -rotation @ eye
    return rotation, translation


def camera_at(eye, target, intrinsics: Intrinsics,
              up: Optional[np.ndarray] = None) -> Camera:
    """Convenience: a :class:`Camera` looking from ``eye`` at ``target``."""
    rotation, translation = look_at(eye, target, up)
    return Camera(intrinsics, rotation, translation)


def orbit_cameras(intrinsics: Intrinsics, radius: float, count: int,
                  elevation_deg: float = 20.0, target=None,
                  full_circle: bool = True,
                  start_deg: float = 0.0) -> List[Camera]:
    """Inward-facing orbit rig (NeRF-Synthetic / DeepVoxels style)."""
    target = np.zeros(3) if target is None else np.asarray(target, float)
    elevation = np.radians(elevation_deg)
    span = 2 * np.pi if full_circle else np.pi
    cameras = []
    for i in range(count):
        azimuth = np.radians(start_deg) + span * i / max(count, 1)
        eye = target + radius * np.array([
            np.cos(elevation) * np.cos(azimuth),
            -np.sin(elevation),
            np.cos(elevation) * np.sin(azimuth),
        ])
        cameras.append(camera_at(eye, target, intrinsics))
    return cameras


def forward_facing_cameras(intrinsics: Intrinsics, distance: float,
                           count: int, spread: float = 0.5,
                           target=None, jitter_rng=None) -> List[Camera]:
    """Roughly forward-facing rig (LLFF style): cameras on a small planar
    grid all looking toward the scene centre."""
    target = np.zeros(3) if target is None else np.asarray(target, float)
    cameras = []
    cols = int(np.ceil(np.sqrt(count)))
    for i in range(count):
        row, col = divmod(i, cols)
        offset_x = (col - (cols - 1) / 2.0) * spread
        offset_y = (row - (cols - 1) / 2.0) * spread * 0.6
        eye = target + np.array([offset_x, offset_y, -distance])
        if jitter_rng is not None:
            eye = eye + jitter_rng.normal(scale=0.02 * distance, size=3)
        cameras.append(camera_at(eye, target, intrinsics))
    return cameras


def rotation_about_axis(axis: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rodrigues rotation matrix about a unit ``axis``."""
    axis = normalize(axis)
    x, y, z = axis
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    cross = np.array([[0, -z, y], [z, 0, -x], [-y, x, 0]])
    return c * np.eye(3) + s * cross + (1 - c) * np.outer(axis, axis)
