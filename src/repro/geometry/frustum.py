"""Frusta from 3D point patches and their source-view footprints.

The Gen-NeRF workload scheduler (paper Sec. 4.3, Fig. 5) partitions the
H x W x D workload cube into point patches.  A patch (a pixel rectangle
at a depth slab) is a *frustum* in world space; projecting its eight
corners onto a source image plane yields a tetragon whose area estimates
the scene-feature memory traffic needed to process the patch.  This
module builds frusta, projects them, and measures footprint areas — the
"vertex projector" and "area calculator" blocks of Fig. 7 in software.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .camera import Camera


@dataclass(frozen=True)
class PatchRegion:
    """A point patch in workload-cube coordinates (paper's (h, w, d) space).

    ``h0:h1`` and ``w0:w1`` are a half-open pixel rectangle on the novel
    image; ``d0:d1`` a half-open slab of depth-bin indices out of
    ``depth_bins`` total between ``near`` and ``far``.
    """

    h0: int
    h1: int
    w0: int
    w1: int
    d0: int
    d1: int

    @property
    def num_pixels(self) -> int:
        return (self.h1 - self.h0) * (self.w1 - self.w0)

    @property
    def num_depth_bins(self) -> int:
        return self.d1 - self.d0

    @property
    def num_points(self) -> int:
        return self.num_pixels * self.num_depth_bins

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.h1 - self.h0, self.w1 - self.w0, self.d1 - self.d0)


def depth_of_bin(bin_index: float, depth_bins: int, near: float,
                 far: float) -> float:
    """Metric depth of a (possibly fractional) depth-bin coordinate."""
    return near + (far - near) * bin_index / depth_bins


def frustum_corners(novel: Camera, region: PatchRegion, depth_bins: int,
                    near: float, far: float) -> np.ndarray:
    """Eight world-space corners of the frustum spanned by ``region``.

    Corners are the four pixel-rectangle corners unprojected at the near
    and far faces of the depth slab.
    """
    d_near = depth_of_bin(region.d0, depth_bins, near, far)
    d_far = depth_of_bin(region.d1, depth_bins, near, far)
    pixel_corners = np.array([
        [region.w0, region.h0],
        [region.w1, region.h0],
        [region.w1, region.h1],
        [region.w0, region.h1],
    ], dtype=np.float64)
    corners = []
    for depth in (d_near, d_far):
        corners.append(novel.unproject(pixel_corners,
                                       np.full(4, depth, dtype=np.float64)))
    return np.concatenate(corners, axis=0)  # (8, 3)


def convex_hull_area(points2d: np.ndarray) -> float:
    """Area of the convex hull of 2D points (shoelace on the hull).

    Andrew's monotone chain, dependency-free so the scheduler model stays
    cheap; degenerate inputs (<3 distinct points) return 0.
    """
    pts = np.unique(np.asarray(points2d, dtype=np.float64), axis=0)
    if len(pts) < 3:
        return 0.0
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def half_hull(points: np.ndarray) -> List[np.ndarray]:
        hull: List[np.ndarray] = []
        for p in points:
            while len(hull) >= 2:
                o, a = hull[-2], hull[-1]
                if (a[0] - o[0]) * (p[1] - o[1]) - (a[1] - o[1]) * (p[0] - o[0]) <= 0:
                    hull.pop()
                else:
                    break
            hull.append(p)
        return hull

    lower = half_hull(pts)
    upper = half_hull(pts[::-1])
    hull = np.array(lower[:-1] + upper[:-1])
    if len(hull) < 3:
        return 0.0
    x, y = hull[:, 0], hull[:, 1]
    return float(0.5 * abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))))


@dataclass
class Footprint:
    """Projected footprint of a frustum on one source view's feature map."""

    area: float                  # hull area in feature-map pixels^2
    bbox: Tuple[float, float, float, float]  # (u_min, v_min, u_max, v_max)
    visible: bool                # any corner in front of the camera

    @property
    def bbox_width(self) -> float:
        return max(0.0, self.bbox[2] - self.bbox[0])

    @property
    def bbox_height(self) -> float:
        return max(0.0, self.bbox[3] - self.bbox[1])


def project_frustum(corners_world: np.ndarray, source: Camera,
                    feature_scale: float = 1.0) -> Footprint:
    """Project frustum corners into a source view and measure the footprint.

    ``feature_scale`` rescales pixel coordinates onto the CNN feature map
    (e.g. 0.5 for a stride-2 encoder).  Corners behind the source camera
    are clamped out; a fully-behind frustum reports ``visible=False``.
    """
    pixels, depth = source.project(corners_world, return_depth=True)
    valid = depth > 1e-9
    if not valid.any():
        return Footprint(area=0.0, bbox=(0.0, 0.0, 0.0, 0.0), visible=False)
    pix = pixels[valid] * feature_scale
    # Clip into a generous working window so near-plane blowups do not
    # produce absurd areas; the scheduler only compares candidates.
    width = source.intrinsics.width * feature_scale
    height = source.intrinsics.height * feature_scale
    pix = np.clip(pix, [-2 * width, -2 * height], [3 * width, 3 * height])
    area = convex_hull_area(pix)
    bbox = (float(pix[:, 0].min()), float(pix[:, 1].min()),
            float(pix[:, 0].max()), float(pix[:, 1].max()))
    return Footprint(area=area, bbox=bbox, visible=True)


def patch_memory_footprint(novel: Camera, sources: Sequence[Camera],
                           region: PatchRegion, depth_bins: int, near: float,
                           far: float, feature_scale: float = 1.0,
                           channels: int = 32,
                           bytes_per_element: int = 1) -> dict:
    """Estimate scene-feature bytes needed to process one point patch.

    For each source view the covered feature area (clipped to the feature
    map) times the channel depth gives the prefetch volume; the paper's
    greedy partition minimises this per sampled point.

    Returns a dict with per-view areas, total bytes, and bytes/point.
    """
    corners = frustum_corners(novel, region, depth_bins, near, far)
    areas = []
    total_elems = 0.0
    feat_w = max(1.0, sources[0].intrinsics.width * feature_scale) if sources else 1.0
    feat_h = max(1.0, sources[0].intrinsics.height * feature_scale) if sources else 1.0
    for source in sources:
        footprint = project_frustum(corners, source, feature_scale)
        # Clip the covered area to the feature map extent: fetching can
        # never exceed the stored map.
        area = min(footprint.area, feat_w * feat_h)
        # Bilinear interpolation touches a 2-pixel guard band around the
        # tetragon; model it with a half-pixel dilation of the bbox.
        guard = (footprint.bbox_width + footprint.bbox_height + 1.0)
        elems = (area + guard) * channels
        areas.append(area)
        total_elems += elems
    total_bytes = total_elems * bytes_per_element
    points = max(region.num_points, 1)
    return {
        "per_view_area": areas,
        "total_bytes": total_bytes,
        "bytes_per_point": total_bytes / points,
    }
