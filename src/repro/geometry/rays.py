"""Camera rays and depth parameterisation (paper Sec. 2.1, Step 1).

A ray is r(t) = o + t·d with origin o (camera centre), unit direction d,
and t in [t_near, t_far].  :class:`RayBundle` holds a batch of rays in
structure-of-arrays form, which every sampler and renderer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .camera import Camera


@dataclass
class RayBundle:
    """A batch of rays.

    Attributes
    ----------
    origins:      (R, 3) ray origins.
    directions:   (R, 3) unit directions.
    near, far:    scalar depth bounds shared by the bundle.
    pixels:       (R, 2) pixel coordinates the rays pass through, kept so
                  the hardware scheduler can map rays back to image tiles.
    """

    origins: np.ndarray
    directions: np.ndarray
    near: float
    far: float
    pixels: Optional[np.ndarray] = None

    def __post_init__(self):
        self.origins = np.asarray(self.origins, dtype=np.float64)
        self.directions = np.asarray(self.directions, dtype=np.float64)
        if self.origins.shape != self.directions.shape:
            raise ValueError("origins and directions must have equal shapes")
        if self.near >= self.far:
            raise ValueError(f"near={self.near} must be < far={self.far}")

    def __len__(self) -> int:
        return self.origins.shape[0]

    def points_at(self, depths: np.ndarray) -> np.ndarray:
        """World points r(t) for per-ray depths of shape (R, P) -> (R, P, 3)."""
        depths = np.asarray(depths, dtype=np.float64)
        return (self.origins[:, None, :]
                + depths[..., None] * self.directions[:, None, :])

    def select(self, index) -> "RayBundle":
        """Sub-bundle by boolean mask or integer index array."""
        pixels = self.pixels[index] if self.pixels is not None else None
        return RayBundle(self.origins[index], self.directions[index],
                         self.near, self.far, pixels)


def rays_for_pixels(camera: Camera, pixels: np.ndarray, near: float,
                    far: float) -> RayBundle:
    """Rays through the centres of the given (R, 2) pixel coordinates."""
    pixels = np.asarray(pixels, dtype=np.float64)
    directions = camera.pixel_ray_directions(pixels)
    origins = np.broadcast_to(camera.center, directions.shape).copy()
    return RayBundle(origins, directions, near, far, pixels=pixels)


def rays_for_image(camera: Camera, near: float, far: float,
                   step: int = 1) -> RayBundle:
    """Rays for a full image in row-major order, optionally strided.

    ``step`` > 1 renders a regularly subsampled image — used by tests and
    the oracle evaluators to keep numpy runtimes sane at paper-scale
    resolutions.
    """
    height = camera.intrinsics.height
    width = camera.intrinsics.width
    vs, us = np.meshgrid(np.arange(0, height, step),
                         np.arange(0, width, step), indexing="ij")
    pixels = np.stack([us.ravel() + 0.5, vs.ravel() + 0.5], axis=-1)
    return rays_for_pixels(camera, pixels, near, far)


def image_shape_for_step(camera: Camera, step: int) -> Tuple[int, int]:
    """(rows, cols) of the image produced by :func:`rays_for_image`."""
    height = camera.intrinsics.height
    width = camera.intrinsics.width
    return (len(range(0, height, step)), len(range(0, width, step)))


def stratified_depths(rng: np.random.Generator, num_rays: int,
                      num_points: int, near: float, far: float,
                      jitter: bool = True) -> np.ndarray:
    """Stratified uniform depth samples, the vanilla-NeRF baseline.

    Divides [near, far] into ``num_points`` bins and samples one depth per
    bin (uniformly within the bin when ``jitter``; bin centres otherwise).
    Returns (num_rays, num_points), sorted along the last axis.
    """
    edges = np.linspace(near, far, num_points + 1)
    lower, upper = edges[:-1], edges[1:]
    if jitter:
        u = rng.random((num_rays, num_points))
    else:
        u = np.full((num_rays, num_points), 0.5)
    return lower + (upper - lower) * u
