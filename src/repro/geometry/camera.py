"""Pinhole camera model (OpenCV convention).

Camera frame: +x right, +y down, +z forward (viewing direction).  The
extrinsics map world to camera, ``x_cam = R @ x_world + t``; the camera
centre in world coordinates is ``C = -R.T @ t``.  Pixels are ``(u, v)``
with ``u`` along image width and ``v`` along height; a 3D point projects
via ``K @ x_cam`` followed by perspective division.

This is the coordinate machinery under everything in the reproduction:
ray emission (paper Step 1), point-to-source-view projection π (Step 2),
and the epipolar analysis of Sec. 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Intrinsics:
    """Pinhole intrinsics: focal lengths and principal point, in pixels."""

    fx: float
    fy: float
    cx: float
    cy: float
    width: int
    height: int

    @property
    def matrix(self) -> np.ndarray:
        return np.array([[self.fx, 0.0, self.cx],
                         [0.0, self.fy, self.cy],
                         [0.0, 0.0, 1.0]])

    @property
    def inverse(self) -> np.ndarray:
        return np.array([[1.0 / self.fx, 0.0, -self.cx / self.fx],
                         [0.0, 1.0 / self.fy, -self.cy / self.fy],
                         [0.0, 0.0, 1.0]])

    def scaled(self, factor: float) -> "Intrinsics":
        """Intrinsics for an image resized by ``factor`` (e.g. a CNN
        feature map at stride 1/factor of the input)."""
        return Intrinsics(self.fx * factor, self.fy * factor,
                          self.cx * factor, self.cy * factor,
                          max(1, int(round(self.width * factor))),
                          max(1, int(round(self.height * factor))))

    @staticmethod
    def from_fov(width: int, height: int, fov_x_deg: float) -> "Intrinsics":
        """Square-pixel intrinsics from a horizontal field of view."""
        fx = 0.5 * width / np.tan(np.radians(fov_x_deg) / 2.0)
        return Intrinsics(fx, fx, width / 2.0, height / 2.0, width, height)


@dataclass(frozen=True)
class Camera:
    """A posed pinhole camera.

    ``rotation`` and ``translation`` are the world-to-camera transform.
    """

    intrinsics: Intrinsics
    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self):
        rotation = np.asarray(self.rotation, dtype=np.float64)
        translation = np.asarray(self.translation, dtype=np.float64).reshape(3)
        if rotation.shape != (3, 3):
            raise ValueError(f"rotation must be 3x3, got {rotation.shape}")
        if not np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-6):
            raise ValueError("rotation is not orthonormal")
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)

    # ------------------------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        """Camera centre in world coordinates."""
        return -self.rotation.T @ self.translation

    @property
    def forward(self) -> np.ndarray:
        """Unit viewing direction (+z of the camera frame) in world."""
        return self.rotation.T @ np.array([0.0, 0.0, 1.0])

    @property
    def projection_matrix(self) -> np.ndarray:
        """3x4 matrix P = K [R | t]."""
        return self.intrinsics.matrix @ np.hstack(
            [self.rotation, self.translation.reshape(3, 1)])

    # ------------------------------------------------------------------
    def world_to_camera(self, points: np.ndarray) -> np.ndarray:
        """Map (..., 3) world points into the camera frame."""
        pts = np.asarray(points, dtype=np.float64)
        return pts @ self.rotation.T + self.translation

    def camera_to_world(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        return (pts - self.translation) @ self.rotation

    def project(self, points: np.ndarray,
                return_depth: bool = False):
        """Project (..., 3) world points to (..., 2) pixels.

        Points behind the camera produce non-finite pixels; callers that
        care (e.g. the frustum area calculator) should mask on depth.
        """
        cam = self.world_to_camera(points)
        depth = cam[..., 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.intrinsics.fx * cam[..., 0] / depth + self.intrinsics.cx
            v = self.intrinsics.fy * cam[..., 1] / depth + self.intrinsics.cy
        pixels = np.stack([u, v], axis=-1)
        if return_depth:
            return pixels, depth
        return pixels

    def unproject(self, pixels: np.ndarray, depth: np.ndarray) -> np.ndarray:
        """Lift (..., 2) pixels at camera-frame depth z to world points."""
        pix = np.asarray(pixels, dtype=np.float64)
        z = np.asarray(depth, dtype=np.float64)
        x = (pix[..., 0] - self.intrinsics.cx) / self.intrinsics.fx * z
        y = (pix[..., 1] - self.intrinsics.cy) / self.intrinsics.fy * z
        cam = np.stack([x, y, z], axis=-1)
        return self.camera_to_world(cam)

    def pixel_ray_directions(self, pixels: np.ndarray) -> np.ndarray:
        """Unit world-space ray directions through (..., 2) pixels."""
        pix = np.asarray(pixels, dtype=np.float64)
        x = (pix[..., 0] - self.intrinsics.cx) / self.intrinsics.fx
        y = (pix[..., 1] - self.intrinsics.cy) / self.intrinsics.fy
        dirs_cam = np.stack([x, y, np.ones_like(x)], axis=-1)
        dirs_world = dirs_cam @ self.rotation
        norms = np.linalg.norm(dirs_world, axis=-1, keepdims=True)
        return dirs_world / norms

    def in_view(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Boolean mask: points in front of the camera and inside the image."""
        pixels, depth = self.project(points, return_depth=True)
        inside = ((depth > 0)
                  & (pixels[..., 0] >= -margin)
                  & (pixels[..., 0] <= self.intrinsics.width - 1 + margin)
                  & (pixels[..., 1] >= -margin)
                  & (pixels[..., 1] <= self.intrinsics.height - 1 + margin))
        return inside

    def resized(self, factor: float) -> "Camera":
        """Same pose, intrinsics scaled by ``factor``."""
        return Camera(self.intrinsics.scaled(factor), self.rotation,
                      self.translation)
