"""Unified run context for the experiment registry.

A :class:`RunContext` is the single object an experiment executes
against: it owns the seeded RNG streams, the process-wide prepared
scene / dense-reference memos (previously scattered across module
globals in ``repro.core.experiments``), the optional disk-backed scene
cache (:mod:`repro.core.scene_cache`), worker detection for the
variant fan-out, and artefact I/O through
:func:`repro.core.reporting.write_artifact`.

The memos are process-wide by default (two contexts in one process
share prepared scenes, exactly like the old module globals), so pool
workers and sequential paths see identical values; the disk cache
extends the reuse across processes and pytest sessions.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .. import models as M
from ..scenes.datasets import llff_eval_scenes
from .runner import detect_workers
from .scene_cache import SceneCache, recipe_key, source_images_key
from . import faults, reporting

LLFF_EVAL_SCENES = ("fern", "fortress", "horns", "trex")

def _default_results_dir() -> str:
    """The committed ``benchmarks/results`` of the in-tree checkout
    (src-layout: four levels up from this file); for an installed
    package — where that walk lands outside any repository — fall back
    to a cwd-relative ``benchmarks/results``."""
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    in_tree = os.path.join(repo_root, "benchmarks", "results")
    if os.path.isdir(os.path.dirname(in_tree)):
        return in_tree
    return os.path.join(os.getcwd(), "benchmarks", "results")


DEFAULT_RESULTS_DIR = _default_results_dir()

# Process-wide memos: scene generation is crc32-deterministic, the
# source-view renders of ``SceneData.prepare`` depend only on
# (scene, gt_points), and the dense target reference only on
# (scene, step) — so one process-wide memo serves every harness:
# Table 2 and Table 3 at matching view counts share the same
# minutes-scale ground-truth renders instead of re-rendering them per
# runner.  The shared ``SceneData`` objects also carry the scene-level
# caches of the training fast path (``gt_cache`` / ``conv_cache``),
# which is what lets identically scheduled variant ladders reuse
# supervision across models.
_SCENE_DATA_MEMO: Dict[tuple, "M.SceneData"] = {}
_REFERENCE_MEMO: Dict[tuple, np.ndarray] = {}

REFERENCE_POINTS = 192   # dense-reference quadrature of every harness

# "cache unspecified" sentinel for llff_scene_data/llff_references:
# distinct from None so an explicitly disabled cache (None, e.g. from a
# RunContext whose cache_dir is an off-value) is honoured even when the
# REPRO_CACHE_DIR env knob is set.
_UNRESOLVED = object()


def clear_scene_memos() -> None:
    """Drop the process-wide prepared-scene and reference memos.

    Long-lived processes that sweep many configurations (each pinning
    its rendered ``SceneData`` — including the per-scene GT and
    feature caches — forever) can call this between sweeps to release
    the memory; the next harness run simply re-renders (or reloads
    from the disk cache when ``REPRO_CACHE_DIR`` is set)."""
    _SCENE_DATA_MEMO.clear()
    _REFERENCE_MEMO.clear()


def _source_images_key(name: str, base: tuple) -> str:
    # Delegates to the shared recipe in repro.core.scene_cache so the
    # serve-layer SceneStore hits the same disk entries.
    image_scale, num_source_views, seed, gt_points = base
    return source_images_key(name, image_scale, num_source_views, seed,
                             gt_points)


def _reference_key(name: str, base: tuple, eval_step: int) -> str:
    image_scale, num_source_views, seed, gt_points = base
    return recipe_key(f"llff-ref-{name}", image_scale=image_scale,
                      num_source_views=num_source_views, seed=seed,
                      num_points=REFERENCE_POINTS, step=int(eval_step))


def llff_scene_data(image_scale: float, num_source_views: int = 10,
                    seed: int = 1, gt_points: int = 128,
                    names: Sequence[str] = LLFF_EVAL_SCENES,
                    cache=_UNRESOLVED,
                    workers: Optional[int] = 1) -> Dict[str, "M.SceneData"]:
    """Prepared :class:`repro.models.SceneData` for LLFF analogues,
    memoised per process **per scene**, so a harness that asks for a
    subset (tiny test configs) only ever pays for that subset.

    With a disk cache active (``cache=`` or the ``REPRO_CACHE_DIR``
    knob) the expensive source-view renders additionally persist across
    processes, keyed by the crc32 scene recipe; hits are byte-identical
    to cold preparation, and the cheap deterministic scene objects are
    rebuilt either way.  ``cache=None`` explicitly disables the disk
    layer even when the env knob is set; leaving it unspecified
    resolves the knob.

    ``workers`` shards the cold source-view renders over the intra-frame
    pool (``None`` autodetects); sharded renders are byte-identical to
    sequential, so the disk-cache keys and contents are unaffected.
    """
    base = (float(image_scale), int(num_source_views), int(seed),
            int(gt_points))
    prepared: Dict[str, "M.SceneData"] = {}
    missing = [name for name in names
               if (base + (name,)) not in _SCENE_DATA_MEMO]
    if missing:
        if cache is _UNRESOLVED:
            cache = SceneCache.from_env()
        eval_scenes = llff_eval_scenes(image_scale, num_source_views,
                                       seed=seed)
        for name in missing:
            images = cache.load(_source_images_key(name, base)) \
                if cache else None
            if images is None:
                data = M.SceneData.prepare(eval_scenes[name],
                                           gt_points=gt_points,
                                           workers=workers)
                if cache:
                    cache.store(_source_images_key(name, base),
                                data.source_images)
            else:
                data = M.SceneData(scene=eval_scenes[name],
                                   source_images=images)
            _SCENE_DATA_MEMO[base + (name,)] = data
    for name in names:
        prepared[name] = _SCENE_DATA_MEMO[base + (name,)]
    return prepared


def llff_references(scene_data: Dict[str, "M.SceneData"], key: tuple,
                    eval_step: int,
                    cache=_UNRESOLVED) -> Dict[str, np.ndarray]:
    """Dense target references for a prepared scene dict, memoised per
    (configuration, scene, step) — and persisted through the disk cache
    when one is active.  ``key`` is the scene recipe tuple
    ``(image_scale, num_source_views, seed, gt_points)``.
    ``cache=None`` explicitly disables the disk layer; unspecified
    resolves the ``REPRO_CACHE_DIR`` knob."""
    references: Dict[str, np.ndarray] = {}
    resolved = cache
    for name, data in scene_data.items():
        memo_key = (key, name, int(eval_step))
        cached = _REFERENCE_MEMO.get(memo_key)
        if cached is None:
            if resolved is _UNRESOLVED:
                resolved = SceneCache.from_env()
            disk_key = _reference_key(name, key, eval_step)
            cached = resolved.load(disk_key) if resolved else None
            if cached is None:
                cached = M.render_target_reference(
                    data.scene, num_points=REFERENCE_POINTS,
                    step=eval_step)
                if resolved:
                    resolved.store(disk_key, cached)
            _REFERENCE_MEMO[memo_key] = cached
        references[name] = cached
    return references


@dataclass
class RunContext:
    """Execution context shared by every registry experiment.

    * ``seed`` — overrides an experiment's ``seed`` parameter when set
      (``None`` keeps the experiment's committed-artefact default);
    * ``scale`` — work multiplier applied through each experiment's
      declared scale rules (1.0 = the committed-artefact configuration);
    * ``workers`` — fan-out width for :func:`repro.core.run_variants`
      (``None`` = ``REPRO_WORKERS`` env, then CPU count);
    * ``cache_dir`` — disk scene-cache directory (``None`` = the
      ``REPRO_CACHE_DIR`` env knob);
    * ``results_dir`` — where :meth:`write_artifact` lands artefacts
      (defaults to the committed ``benchmarks/results``);
    * ``task_timeout`` — per-task timeout in seconds for the worker
      pools (``None`` = the ``REPRO_TASK_TIMEOUT`` env knob, else off);
    * ``retries`` — bounded retry budget for failed/hung pool tasks
      (``None`` = the ``REPRO_RETRIES`` env knob, else 1).

    The timeout/retry knobs share the lenient ``REPRO_WORKERS``-style
    parsing (see :mod:`repro.core.faults`): malformed values warn and
    fall back to defaults instead of crashing a long run.
    """

    seed: Optional[int] = None
    scale: float = 1.0
    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    results_dir: str = DEFAULT_RESULTS_DIR
    task_timeout: Optional[float] = None
    retries: Optional[int] = None

    # ------------------------------------------------------------------
    def rng(self, stream: str, seed: Optional[int] = None
            ) -> np.random.Generator:
        """A named, reproducible RNG stream.

        Streams are independent per name (crc32-salted) and anchored at
        ``seed`` (argument, else the context seed, else 0), so two
        experiments drawing from differently named streams never
        entangle their randomness.  The ported paper experiments keep
        seeding their units through explicit ``seed`` parameters (that
        is what makes the committed artefacts byte-stable); this is the
        stream facility for *new* scenarios registered against the
        context.
        """
        base = seed if seed is not None else (
            self.seed if self.seed is not None else 0)
        return np.random.default_rng(
            (int(base), zlib.crc32(stream.encode("utf-8"))))

    # ------------------------------------------------------------------
    def scene_cache(self) -> Optional[SceneCache]:
        return SceneCache.from_env(self.cache_dir)

    def scene_data(self, image_scale: float, num_source_views: int = 10,
                   seed: int = 1, gt_points: int = 128,
                   names: Sequence[str] = LLFF_EVAL_SCENES
                   ) -> Dict[str, "M.SceneData"]:
        return llff_scene_data(image_scale, num_source_views, seed=seed,
                               gt_points=gt_points, names=names,
                               cache=self.scene_cache(),
                               workers=self.workers)

    def references(self, scene_data: Dict[str, "M.SceneData"], key: tuple,
                   eval_step: int) -> Dict[str, np.ndarray]:
        return llff_references(scene_data, key, eval_step,
                               cache=self.scene_cache())

    # ------------------------------------------------------------------
    def resolve_workers(self, num_tasks: int) -> int:
        return detect_workers(num_tasks, self.workers)

    def resolve_task_timeout(self) -> Optional[float]:
        return faults.detect_task_timeout(self.task_timeout)

    def resolve_retries(self) -> int:
        return faults.detect_retries(self.retries)

    # ------------------------------------------------------------------
    def artifact_path(self, name: str) -> str:
        return os.path.join(self.results_dir, f"{name}.txt")

    def write_artifact(self, name: str, text: str) -> str:
        """Persist one artefact (atomically; trailing newline added,
        matching the benchmark harness convention)."""
        path = self.artifact_path(name)
        reporting.write_artifact(path, text + "\n")
        return path
