"""ASCII figure rendering for terminal-only environments.

The paper's evaluation is figures as much as tables; this module renders
(x, y) series and grouped bars as plain text so the benchmark artefacts
under ``benchmarks/results/`` can show the *shape* of each figure (who
wins, where curves cross) without matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

MARKERS = "ox+*#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, cells: int
           ) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    positions = (values - lo) / span * (cells - 1)
    return np.clip(np.round(positions).astype(int), 0, cells - 1)


def ascii_line_chart(series: Dict[str, Tuple[Sequence[float],
                                             Sequence[float]]],
                     width: int = 60, height: int = 16,
                     title: str = "", x_label: str = "x",
                     y_label: str = "y") -> str:
    """Render named (xs, ys) series on one shared-axis character grid.

    Each series gets a marker from :data:`MARKERS`; the legend maps them
    back.  Axes are annotated with min/max values.
    """
    if not series:
        raise ValueError("no series to plot")
    all_x = np.concatenate([np.asarray(xs, dtype=float)
                            for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float)
                            for _, ys in series.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if np.isclose(y_lo, y_hi):
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} = {name}")
        cols = _scale(np.asarray(xs, dtype=float), x_lo, x_hi, width)
        rows = _scale(np.asarray(ys, dtype=float), y_lo, y_hi, height)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        prefix = top_label.rjust(pad) if index == 0 else (
            bottom_label.rjust(pad) if index == height - 1 else " " * pad)
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(" " * pad + f"  {x_lo:.3g} ... {x_hi:.3g}  ({x_label})")
    lines.append(f"[{y_label}]  " + "   ".join(legend))
    return "\n".join(lines)


def ascii_bar_chart(groups: Dict[str, Dict[str, float]], width: int = 40,
                    title: str = "", value_label: str = "value") -> str:
    """Render grouped horizontal bars.

    ``groups`` maps group name -> {bar name -> value}; bars are scaled
    to the global maximum so cross-group comparison is visual.
    """
    if not groups:
        raise ValueError("no groups to plot")
    peak = max(max(bars.values()) for bars in groups.values())
    if peak <= 0:
        peak = 1.0
    name_width = max(len(name) for bars in groups.values() for name in bars)

    lines: List[str] = []
    if title:
        lines.append(title)
    for group, bars in groups.items():
        lines.append(f"{group}:")
        for name, value in bars.items():
            filled = int(round(value / peak * width))
            lines.append(f"  {name.ljust(name_width)} "
                         f"|{'#' * filled}{' ' * (width - filled)}| "
                         f"{value:.4g}")
    lines.append(f"(bar scale: 0 ... {peak:.4g} {value_label})")
    return "\n".join(lines)


def stacked_latency_chart(rows: Dict[str, Dict[str, float]],
                          width: int = 48, title: str = "") -> str:
    """Render stacked latency bars (the Fig. 2 / Fig. 12 style).

    ``rows`` maps bar name -> ordered {phase -> seconds}; each phase gets
    a distinct fill character and the legend shows the mapping.
    """
    if not rows:
        raise ValueError("no rows to plot")
    fills = "#=+:.~"
    phases: List[str] = []
    for bars in rows.values():
        for phase in bars:
            if phase not in phases:
                phases.append(phase)
    peak = max(sum(bars.values()) for bars in rows.values())
    if peak <= 0:
        peak = 1.0
    name_width = max(len(name) for name in rows)

    lines: List[str] = []
    if title:
        lines.append(title)
    for name, bars in rows.items():
        segments = []
        for index, phase in enumerate(phases):
            value = bars.get(phase, 0.0)
            cells = int(round(value / peak * width))
            segments.append(fills[index % len(fills)] * cells)
        bar = "".join(segments)
        lines.append(f"  {name.ljust(name_width)} |{bar.ljust(width)}| "
                     f"{sum(bars.values()):.4g}s")
    legend = "   ".join(f"{fills[i % len(fills)]} = {phase}"
                        for i, phase in enumerate(phases))
    lines.append(f"legend: {legend}  (scale 0 ... {peak:.4g}s)")
    return "\n".join(lines)
