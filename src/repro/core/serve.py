"""Cross-request micro-batching render service (``python -m repro serve``).

The paper's core insight — amortising cost by batching work that
arrives independently — applied at the *serving* layer: a long-lived
daemon accepts (scene, camera, quality) render requests from many
clients, and a scheduler coalesces the pending rays of concurrent
requests into shared batched model dispatches under
:class:`repro.nn.inference_mode`.

Design (sans-IO, virtual clock):

* :class:`RenderScheduler` is a *synchronous* discrete-event core:
  ``submit(request, tick)`` enqueues, ``run_tick(tick)`` dispatches and
  returns completed :class:`RenderResponse` objects.  Nothing inside
  reads ``time.time()`` or sleeps — tests and the ``serve_replay``
  harness drive it tick by tick, fully deterministically; only the
  stdio daemon (:func:`run_daemon`) wraps it with wall-clock ticks.
* **Dispatch policy.**  A batch fires when the oldest pending request
  has waited ``batch_window`` ticks, or when pending rays reach
  ``max_batch`` (the ``REPRO_BATCH_WINDOW`` / ``REPRO_MAX_BATCH``
  knobs).  Batch assembly is FIFO in submission order and cuts at
  ``max_batch`` rays; a single chunk larger than ``max_batch`` is
  atomic and dispatches alone.
* **Byte-identity.**  Every response is pinned bitwise-identical to a
  direct ``render_image_*`` call (``tests/core/test_serve.py``).  Two
  regimes make that hold: *uniform* quality kinds are per-ray
  deterministic, so rays from many requests merge into one bundle and
  re-chunk freely; *hierarchical* and *gen_nerf* kinds are chunk-
  geometry-dependent (per-chunk rng reseeds / budget redistribution),
  so the scheduler decomposes each request into **exactly** the chunk
  tasks the direct renderer would run — chunks are pure functions of
  their slice — and coalesces whole chunks across requests into shared
  pool dispatches instead.
* **Scene reuse.**  A :class:`SceneStore` LRU holds prepared
  :class:`repro.models.SceneData` (bounded by ``scene_capacity``; disk
  reuse through :mod:`repro.core.scene_cache` under the shared
  ``llff-src`` recipe), and encoded feature maps come from
  ``SceneData.encoded_maps`` — the ``Parameter.version``-keyed eval
  cache, so a warm scene re-encodes only if the model changed.
* **Backpressure.**  Past ``queue_limit`` in-flight requests,
  ``submit`` sheds with :class:`ServiceOverloaded` (a 429-style
  refusal) and a ``serve.request_shed`` event — deterministic in
  submission order.
* **Fault isolation.**  A :class:`repro.core.faults.FaultPlan` with
  request-scoped keys poisons individual requests (``error`` /
  ``corrupt`` / ``hang``); the poisoned request is quarantined with an
  error response and a ``serve.request_failed`` event while its
  batch-mates complete byte-identically
  (``tests/core/test_serve_faults.py``).

Event vocabulary (all through :mod:`repro.core.log`):
``serve.request_shed``, ``serve.request_failed``,
``serve.request_hung``, ``serve.batch_dispatched``,
``serve.scene_prepared``, ``serve.scene_evicted``, ``serve.stats``.
See ``docs/serving.md`` for the full schema.
"""

from __future__ import annotations

import json
import logging
import math
import os
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import models as M
from ..geometry.rays import RayBundle, image_shape_for_step, rays_for_image
from ..scenes.datasets import make_scene
from . import faults, frame_pool, log
from .reporting import format_table
from .scene_cache import SceneCache, source_images_key

_LOG = log.get_logger("serve")

WINDOW_ENV = "REPRO_BATCH_WINDOW"
MAX_BATCH_ENV = "REPRO_MAX_BATCH"
QUEUE_ENV = "REPRO_QUEUE_LIMIT"

DEFAULT_BATCH_WINDOW = 4      # ticks a request may wait for batch-mates
DEFAULT_MAX_BATCH = 4096      # rays per dispatch before the window cuts
DEFAULT_QUEUE_LIMIT = 64      # in-flight requests before shedding

_UNRESOLVED = object()        # "cache unspecified" sentinel (see context)


# ----------------------------------------------------------------------
# Env knobs (lenient, like REPRO_WORKERS / REPRO_RETRIES)
# ----------------------------------------------------------------------
def _detect_knob(value, env: str, default: int, floor: int) -> int:
    if value is not None:
        value = faults._parse_number(value, env.lower(), int)
    if value is None:
        env_value = os.environ.get(env)
        if env_value is not None and env_value.strip():
            value = faults._parse_number(env_value, env, int)
    if value is None:
        value = default
    return max(int(value), floor)


def detect_batch_window(window=None) -> int:
    """Resolve the batching window in ticks: explicit argument, then
    the ``REPRO_BATCH_WINDOW`` env knob, then the default.  Malformed
    values warn (``knob.ignored``) and fall through; negatives clamp to
    0 (dispatch every tick)."""
    return _detect_knob(window, WINDOW_ENV, DEFAULT_BATCH_WINDOW, 0)


def detect_max_batch(max_batch=None) -> int:
    """Resolve the per-dispatch ray budget: explicit argument, then the
    ``REPRO_MAX_BATCH`` env knob, then the default; clamps at 1."""
    return _detect_knob(max_batch, MAX_BATCH_ENV, DEFAULT_MAX_BATCH, 1)


def detect_queue_limit(limit=None) -> int:
    """Resolve the in-flight high-water mark: explicit argument, then
    the ``REPRO_QUEUE_LIMIT`` env knob, then the default; clamps at 1."""
    return _detect_knob(limit, QUEUE_ENV, DEFAULT_QUEUE_LIMIT, 1)


# ----------------------------------------------------------------------
# Quality presets and models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualitySpec:
    """One serving quality tier.

    ``kind`` picks the render path: ``uniform`` (equal stratified
    samples; per-ray deterministic, so rays merge across requests),
    ``hierarchical`` (coarse + importance-sampled fine pass), or
    ``gen_nerf`` (coarse-then-focus).  ``num_points`` doubles as the
    Ray-Mixer ``n_max`` so the fixed-capacity module never needs
    padding.
    """

    name: str
    kind: str                   # "uniform" | "hierarchical" | "gen_nerf"
    num_points: int
    coarse_points: int = 0
    focused_points: int = 0

    @property
    def mergeable(self) -> bool:
        """May rays of distinct requests share one model call?"""
        return self.kind == "uniform"


QUALITIES: Dict[str, QualitySpec] = {
    "draft": QualitySpec("draft", "uniform", num_points=4),
    "standard": QualitySpec("standard", "uniform", num_points=8),
    "high": QualitySpec("high", "hierarchical", num_points=8,
                        coarse_points=8),
    "gen_nerf": QualitySpec("gen_nerf", "gen_nerf", num_points=12,
                            coarse_points=4, focused_points=8),
}

# Small serving-scale widths (the paper-scale dims are for FLOPs
# accounting, not numpy inference).
_SERVE_MODEL_WIDTHS = dict(feature_dim=8, view_hidden=8, score_hidden=6,
                           density_hidden=12, density_feature_dim=6,
                           encoder_hidden=8)


def build_model(quality: str, seed: int = 0):
    """The deterministic serving model for one quality tier.

    Uniform/hierarchical tiers share the IBRNet-style architecture at
    tier-specific point capacity; ``gen_nerf`` builds the
    coarse-then-focus pair.  Weights depend only on (quality, seed).
    """
    spec = QUALITIES.get(quality)
    if spec is None:
        raise ServeError(f"unknown quality {quality!r}; "
                         f"choose from {sorted(QUALITIES)}")
    rng = np.random.default_rng(
        (int(seed), zlib.crc32(f"serve-model-{quality}".encode("utf-8"))))
    if spec.kind == "gen_nerf":
        fine = M.ModelConfig(ray_module="mixer", n_max=spec.num_points,
                             **_SERVE_MODEL_WIDTHS)
        config = M.GenNerfConfig(fine=fine,
                                 coarse_points=spec.coarse_points,
                                 focused_points=spec.focused_points)
        model = M.GenNeRF(config, rng=rng)
    else:
        config = M.ModelConfig(ray_module="mixer", n_max=spec.num_points,
                               **_SERVE_MODEL_WIDTHS)
        model = M.GeneralizableNeRF(config, rng=rng)
    model.eval()
    return model


# ----------------------------------------------------------------------
# Requests, responses, errors
# ----------------------------------------------------------------------
class ServeError(ValueError):
    """A malformed or invalid request (the 4xx that is *not* 429)."""


class ServiceOverloaded(RuntimeError):
    """The queue passed its high-water mark; the request was shed
    without being enqueued — a 429-style refusal the client may retry
    after backing off."""

    status_code = 429


@dataclass(frozen=True)
class RenderRequest:
    """One client render request.

    ``scene`` is an LLFF-analogue scene name (any string; generation is
    crc32-deterministic), ``quality`` a :data:`QUALITIES` tier, and the
    camera is the scene's held-out target view strided by ``step``.
    ``chunk`` optionally pins the renderer's chunk size (the direct
    path's ``chunk=`` argument) — byte-identity holds per chunking.
    """

    request_id: str
    scene: str
    quality: str = "standard"
    step: int = 8
    image_scale: float = 1 / 16
    views: int = 4
    scene_seed: int = 1
    chunk: Optional[int] = None

    def validate(self) -> None:
        if not str(self.request_id):
            raise ServeError("request_id must be a non-empty string")
        if not str(self.scene):
            raise ServeError("scene must be a non-empty string")
        if self.quality not in QUALITIES:
            raise ServeError(f"unknown quality {self.quality!r}; "
                             f"choose from {sorted(QUALITIES)}")
        if int(self.step) < 1:
            raise ServeError(f"step must be >= 1, got {self.step}")
        if int(self.views) < 1:
            raise ServeError(f"views must be >= 1, got {self.views}")
        if not 0.0 < float(self.image_scale) <= 1.0:
            raise ServeError(f"image_scale must be in (0, 1], "
                             f"got {self.image_scale}")
        if self.chunk is not None and int(self.chunk) < 1:
            raise ServeError(f"chunk must be >= 1, got {self.chunk}")

    @property
    def scene_key(self) -> tuple:
        """The :class:`SceneStore` key: everything scene preparation
        depends on."""
        return (str(self.scene), float(self.image_scale),
                int(self.views), int(self.scene_seed))

    @property
    def group_key(self) -> tuple:
        """Requests sharing a group share one payload (scene + model)
        and may coalesce into the same pool dispatch."""
        return self.scene_key + (str(self.quality),)


@dataclass
class RenderResponse:
    """One completed (or refused) request.

    ``status`` is ``"ok"`` (``image`` holds the (rows, cols, 3) pixels),
    ``"error"`` (quarantined: ``error`` explains), or ``"shed"``
    (backpressure refusal recorded by the replay harness — a shed
    request never entered the scheduler).
    """

    request_id: str
    status: str
    image: Optional[np.ndarray] = None
    error: Optional[str] = None
    submitted_tick: int = 0
    completed_tick: int = 0
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def latency_ticks(self) -> int:
        return int(self.completed_tick) - int(self.submitted_tick)


# ----------------------------------------------------------------------
# Scene LRU
# ----------------------------------------------------------------------
@dataclass
class PreparedScene:
    """One LRU entry: the deterministic scene plus its prepared data
    (source images and the version-keyed encoded-map cache)."""

    scene: Any
    data: "M.SceneData"


class SceneStore:
    """Bounded LRU of prepared scenes for the serving layer.

    Unlike the process-wide memo in :mod:`repro.core.context`, eviction
    here is real — a long-lived daemon must bound memory across an
    unbounded scene universe.  A cold miss renders the source views
    (``SceneData.prepare``), reusing the disk scene cache under the
    shared ``llff-src`` recipe when one is active, so daemon restarts
    and the experiment harnesses hit the same entries.  Re-preparation
    after eviction is byte-identical to the original (pinned in
    ``tests/core/test_serve.py``), so the LRU is purely a
    memory/latency trade.
    """

    def __init__(self, capacity: int = 4, source_points: int = 32,
                 cache=_UNRESOLVED, workers: Optional[int] = 1):
        self.capacity = max(int(capacity), 1)
        self.source_points = int(source_points)
        self.workers = workers
        self._cache = cache
        self._entries: "OrderedDict[tuple, PreparedScene]" = OrderedDict()
        self._scenes: Dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def scene_for(self, key: tuple):
        """The (cheap, deterministic) scene object for a store key —
        memoised separately from the bounded prepared-data entries."""
        scene = self._scenes.get(key)
        if scene is None:
            name, image_scale, views, seed = key
            scene = make_scene("llff", seed=seed, scene_name=name,
                               num_source_views=views,
                               image_scale=image_scale)
            self._scenes[key] = scene
        return scene

    def _disk_key(self, key: tuple) -> str:
        name, image_scale, views, seed = key
        return source_images_key(name, image_scale, views, seed,
                                 self.source_points)

    def get(self, key: tuple) -> PreparedScene:
        """The prepared scene for ``key`` (LRU: a hit refreshes
        recency; a miss prepares, stores, and may evict the coldest)."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        self.misses += 1
        scene = self.scene_for(key)
        cache = self._cache
        if cache is _UNRESOLVED:
            cache = SceneCache.from_env()
        images = cache.load(self._disk_key(key)) if cache else None
        if images is None:
            data = M.SceneData.prepare(scene,
                                       gt_points=self.source_points,
                                       workers=self.workers)
            if cache:
                cache.store(self._disk_key(key), data.source_images)
        else:
            data = M.SceneData(scene=scene, source_images=images)
        log.event(_LOG, "serve.scene_prepared", level=logging.INFO,
                  scene=key[0], key=key, disk_hit=images is not None)
        entry = PreparedScene(scene=scene, data=data)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self.evictions += 1
            log.event(_LOG, "serve.scene_evicted", level=logging.INFO,
                      scene=evicted_key[0], key=evicted_key)
        return entry

    @property
    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServeConfig:
    """Scheduler configuration.

    ``batch_window`` / ``max_batch`` / ``queue_limit`` map to the
    ``REPRO_BATCH_WINDOW`` / ``REPRO_MAX_BATCH`` / ``REPRO_QUEUE_LIMIT``
    knobs (resolved by :meth:`from_env`); ``request_deadline`` (ticks)
    fails a request that cannot complete — the backstop that turns a
    hung request into an error response instead of a stuck queue.
    """

    batch_window: int = DEFAULT_BATCH_WINDOW
    max_batch: int = DEFAULT_MAX_BATCH
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    scene_capacity: int = 4
    workers: Optional[int] = 1
    source_points: int = 32
    model_seed: int = 0
    request_deadline: Optional[int] = None
    cache_dir: Optional[str] = None

    def __post_init__(self):
        if int(self.batch_window) < 0:
            raise ServeError("batch_window must be >= 0")
        if int(self.max_batch) < 1:
            raise ServeError("max_batch must be >= 1")
        if int(self.queue_limit) < 1:
            raise ServeError("queue_limit must be >= 1")
        if int(self.scene_capacity) < 1:
            raise ServeError("scene_capacity must be >= 1")
        if self.request_deadline is not None \
                and int(self.request_deadline) < 1:
            raise ServeError("request_deadline must be >= 1 tick")

    @staticmethod
    def from_env(**overrides) -> "ServeConfig":
        """A config with the batching knobs resolved from the
        environment (explicit overrides win, malformed env values warn
        and fall back — the lenient ``REPRO_WORKERS`` discipline)."""
        resolved = dict(overrides)
        resolved["batch_window"] = detect_batch_window(
            overrides.get("batch_window"))
        resolved["max_batch"] = detect_max_batch(overrides.get("max_batch"))
        resolved["queue_limit"] = detect_queue_limit(
            overrides.get("queue_limit"))
        return ServeConfig(**resolved)


# ----------------------------------------------------------------------
# Pool chunk functions (module-level, picklable).  Each rebuilds the
# chunk's sub-bundle from the task's ray arrays and delegates to the
# *renderer's own* chunk body over the identity slice — sharing the
# direct path's code is what makes byte-identity structural rather
# than coincidental.  The renderer import is deferred: renderer.py
# itself imports :mod:`repro.core`, so a module-level import here
# would be circular.
# ----------------------------------------------------------------------
def _renderer():
    from ..models import renderer

    return renderer


def _uniform_batch_chunk(state, origins, directions) -> np.ndarray:
    model, cameras, src, maps, num_points, near, far = state
    bundle = RayBundle(origins, directions, near, far)
    return _renderer()._ibrnet_chunk(
        (model, bundle, cameras, src, maps, num_points,
         num_points, False), 0, len(bundle), None)


def _hier_batch_chunk(state, origins, directions, uniforms) -> np.ndarray:
    model, cameras, src, maps, num_points, coarse_points, near, far = state
    bundle = RayBundle(origins, directions, near, far)
    return _renderer()._ibrnet_chunk(
        (model, bundle, cameras, src, maps, num_points,
         coarse_points, True), 0, len(bundle), uniforms)


def _gen_nerf_batch_chunk(state, origins, directions
                          ) -> Tuple[np.ndarray, int]:
    model, cameras, coarse_maps, fine_maps, src, near, far = state
    bundle = RayBundle(origins, directions, near, far)
    return _renderer()._gen_nerf_chunk(
        (model, bundle, cameras, coarse_maps, fine_maps,
         src), 0, len(bundle))


_CHUNK_FUNCTIONS = {"uniform": _uniform_batch_chunk,
                    "hierarchical": _hier_batch_chunk,
                    "gen_nerf": _gen_nerf_batch_chunk}


# ----------------------------------------------------------------------
# Scheduler internals
# ----------------------------------------------------------------------
@dataclass
class _Chunk:
    """One undispatchable-apart unit of a request: exactly one chunk of
    the direct renderer's loop (slice bounds plus, for hierarchical,
    the pre-drawn fine-depth uniforms of that chunk)."""

    start: int
    stop: int
    uniforms: Optional[np.ndarray] = None

    @property
    def rays(self) -> int:
        return self.stop - self.start


@dataclass(eq=False)
class _RequestState:
    request: RenderRequest
    spec: QualitySpec
    submitted_tick: int
    bundle: RayBundle
    rows: int
    cols: int
    chunks: List[_Chunk]
    next_chunk: int = 0          # first undispatched chunk
    done_chunks: int = 0
    out: Optional[np.ndarray] = None
    first_dispatch_tick: Optional[int] = None
    failed: Optional[str] = None
    hung: bool = False
    injected_corrupt: bool = False
    focused_points: int = 0

    @property
    def undispatched_rays(self) -> int:
        return sum(chunk.rays for chunk in self.chunks[self.next_chunk:])

    @property
    def complete(self) -> bool:
        return self.done_chunks == len(self.chunks)


class RenderScheduler:
    """The coalescing core: submit requests, run virtual-clock ticks.

    Synchronous and deterministic — ``run_tick`` performs every model
    dispatch inline (sharded over the persistent frame pool when
    ``config.workers`` resolves above 1) and returns the responses that
    completed this tick.  See the module docstring for the dispatch
    policy and byte-identity regimes.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 store: Optional[SceneStore] = None,
                 models: Optional[Dict[str, Any]] = None):
        self.config = config or ServeConfig()
        self.store = store if store is not None else SceneStore(
            capacity=self.config.scene_capacity,
            source_points=self.config.source_points,
            cache=(_UNRESOLVED if self.config.cache_dir is None
                   else SceneCache.from_env(self.config.cache_dir)),
            workers=self.config.workers)
        self._models: Dict[str, Any] = dict(models or {})
        self._pending: "OrderedDict[str, _RequestState]" = OrderedDict()
        self._seen_ids: set = set()
        self._payloads: Dict[tuple, Tuple[PreparedScene, tuple]] = {}
        self.counters: Dict[str, int] = {
            "submitted": 0, "completed": 0, "failed": 0, "shed": 0,
            "dispatches": 0, "batched_rays": 0, "merged_rays": 0}
        self.batch_log: List[Dict[str, int]] = []
        self._latencies: List[int] = []

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return not self._pending

    @property
    def depth(self) -> int:
        """In-flight request count (the backpressure measure)."""
        return len(self._pending)

    def model_for(self, quality: str):
        model = self._models.get(quality)
        if model is None:
            model = build_model(quality, seed=self.config.model_seed)
            self._models[quality] = model
        return model

    # ------------------------------------------------------------------
    def submit(self, request: RenderRequest, tick: int) -> None:
        """Enqueue one request at virtual time ``tick``.

        Raises :class:`ServeError` for invalid requests (never counted
        against the queue) and :class:`ServiceOverloaded` past the
        high-water mark — shedding is deterministic in submission
        order.
        """
        request.validate()
        if request.request_id in self._pending \
                or request.request_id in self._seen_ids:
            raise ServeError(
                f"duplicate request_id {request.request_id!r}")
        if self.depth >= self.config.queue_limit:
            self.counters["shed"] += 1
            log.event(_LOG, "serve.request_shed",
                      request_id=request.request_id, depth=self.depth,
                      limit=self.config.queue_limit, tick=tick)
            raise ServiceOverloaded(
                f"request {request.request_id!r} shed: {self.depth} "
                f"requests in flight >= queue_limit="
                f"{self.config.queue_limit}")
        self.counters["submitted"] += 1
        self._seen_ids.add(request.request_id)
        self._pending[request.request_id] = self._plan(request, tick)

    def _plan(self, request: RenderRequest, tick: int) -> _RequestState:
        """Decompose a request into the direct renderer's exact chunk
        tasks (same ``adaptive_chunk`` geometry; hierarchical uniforms
        pre-drawn in chunk order from the frame's ``default_rng(0)``)."""
        spec = QUALITIES[request.quality]
        scene = self.store.scene_for(request.scene_key)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=request.step)
        rows, cols = image_shape_for_step(scene.target_camera,
                                          request.step)
        views = len(scene.source_cameras)
        if spec.kind == "gen_nerf":
            model = self.model_for(request.quality)
            points = model.config.coarse_points + model.config.n_max
        elif spec.kind == "hierarchical":
            points = spec.num_points + spec.coarse_points
        else:
            points = spec.num_points
        chunk = _renderer().adaptive_chunk(len(bundle), views, points,
                                           request.chunk)
        slices = _renderer()._chunk_slices(len(bundle), chunk)
        rng = np.random.default_rng(0)
        chunks = [_Chunk(start, stop,
                         rng.random((stop - start, spec.num_points))
                         if spec.kind == "hierarchical" else None)
                  for start, stop in slices]
        return _RequestState(
            request=request, spec=spec, submitted_tick=tick,
            bundle=bundle, rows=rows, cols=cols, chunks=chunks,
            out=np.zeros((len(bundle), 3), dtype=np.float64))

    # ------------------------------------------------------------------
    def run_tick(self, tick: int) -> List[RenderResponse]:
        """Advance the virtual clock to ``tick``: dispatch every batch
        the policy owes, enforce deadlines, and return the responses
        that completed."""
        while True:
            work = [state for state in self._pending.values()
                    if state.undispatched_rays and state.failed is None
                    and not state.hung]
            if not work:
                break
            oldest = max(tick - state.submitted_tick for state in work)
            pending_rays = sum(state.undispatched_rays for state in work)
            if oldest < self.config.batch_window \
                    and pending_rays < self.config.max_batch:
                break
            self._execute(self._assemble(work), tick)
        if self.config.request_deadline is not None:
            for state in self._pending.values():
                if state.failed is None and not state.complete \
                        and tick - state.submitted_tick \
                        >= self.config.request_deadline:
                    self._fail(state, f"deadline exceeded after "
                               f"{self.config.request_deadline} ticks")
        responses = []
        for request_id, state in list(self._pending.items()):
            if state.failed is None and state.complete:
                if state.injected_corrupt \
                        or not np.isfinite(state.out).all():
                    self._fail(state, "corrupt result detected")
            if state.failed is not None or state.complete:
                responses.append(self._respond(state, tick))
                del self._pending[request_id]
        return responses

    def drain(self, tick: int, max_ticks: int = 100_000
              ) -> Tuple[List[RenderResponse], int]:
        """Run ticks from ``tick`` until the queue empties; returns
        (all responses, final tick).  ``max_ticks`` is a safety bound —
        a hung request with no ``request_deadline`` would otherwise
        spin forever."""
        responses: List[RenderResponse] = []
        for offset in range(max_ticks + 1):
            responses.extend(self.run_tick(tick + offset))
            if self.idle:
                return responses, tick + offset
        raise RuntimeError(
            f"scheduler did not drain within {max_ticks} ticks "
            f"({self.depth} requests stuck; set request_deadline)")

    # ------------------------------------------------------------------
    def _assemble(self, work: List[_RequestState]
                  ) -> List[Tuple[_RequestState, int]]:
        """FIFO batch assembly: walk pending requests in submission
        order taking whole chunks until ``max_batch`` rays.  The first
        chunk is always admitted, so a single atomic chunk larger than
        the budget dispatches alone; assembly never reorders."""
        entries: List[Tuple[_RequestState, int]] = []
        rays = 0
        for state in self._pending.values():
            if state not in work:
                continue
            while state.next_chunk < len(state.chunks):
                chunk_rays = state.chunks[state.next_chunk].rays
                if rays and rays + chunk_rays > self.config.max_batch:
                    return entries
                entries.append((state, state.next_chunk))
                state.next_chunk += 1
                rays += chunk_rays
                if rays >= self.config.max_batch:
                    return entries
        return entries

    def _fail(self, state: _RequestState, reason: str) -> None:
        if state.failed is not None:
            return
        state.failed = reason
        self.counters["failed"] += 1
        log.event(_LOG, "serve.request_failed",
                  request_id=state.request.request_id, reason=reason)

    def _payload_for(self, group_key: tuple, prepared: PreparedScene,
                     spec: QualitySpec, model) -> tuple:
        """The stable per-group pool payload (model + scene tensors).
        Object identity is preserved while the LRU entry survives, so
        the persistent frame pool stays warm across dispatches; an
        evicted-and-reprepared scene naturally retires the pool."""
        cached = self._payloads.get(group_key)
        if cached is not None and cached[0] is prepared:
            return cached[1]
        scene = prepared.scene
        cameras = tuple(scene.source_cameras)
        src = prepared.data.source_images
        maps = prepared.data.encoded_maps(model)
        if spec.kind == "uniform":
            state = (model, cameras, src, maps, spec.num_points,
                     scene.near, scene.far)
        elif spec.kind == "hierarchical":
            state = (model, cameras, src, maps, spec.num_points,
                     spec.coarse_points, scene.near, scene.far)
        else:
            coarse_maps, fine_maps = maps
            state = (model, cameras, coarse_maps, fine_maps, src,
                     scene.near, scene.far)
        # Drop payloads whose scene the LRU evicted, so the cache never
        # pins memory the store already decided to release.
        live = {id(entry) for entry in self.store._entries.values()}
        self._payloads = {key: value
                          for key, value in self._payloads.items()
                          if id(value[0]) in live}
        self._payloads[group_key] = (prepared, state)
        return state

    def _execute(self, entries: List[Tuple[_RequestState, int]],
                 tick: int) -> None:
        """Run one assembled batch: quarantine poisoned requests, then
        coalesce the surviving chunks group by group into shared pool
        dispatches and scatter results back per request."""
        plan = faults.active_plan()
        live: List[Tuple[_RequestState, int]] = []
        for state, chunk_index in entries:
            fault = plan.request_fault(state.request.request_id) \
                if plan else None
            if fault == "error":
                self._fail(state, "injected request fault: error")
            if state.failed is not None:
                continue
            if fault == "hang":
                if not state.hung:
                    state.hung = True
                    log.event(_LOG, "serve.request_hung",
                              level=logging.INFO,
                              request_id=state.request.request_id,
                              tick=tick)
                state.next_chunk = min(state.next_chunk, chunk_index)
                continue
            if fault == "corrupt":
                state.injected_corrupt = True
            live.append((state, chunk_index))
        if not live:
            return

        rays = sum(state.chunks[index].rays for state, index in live)
        requests = {state.request.request_id for state, _ in live}
        self.counters["dispatches"] += 1
        self.counters["batched_rays"] += rays
        self.batch_log.append(
            {"tick": tick, "rays": rays, "chunks": len(live),
             "requests": len(requests), "atomic": len(live) == 1})
        log.event(_LOG, "serve.batch_dispatched", level=logging.DEBUG,
                  tick=tick, rays=rays, chunks=len(live),
                  requests=len(requests))

        groups: "OrderedDict[tuple, List[Tuple[_RequestState, int]]]" = \
            OrderedDict()
        for state, chunk_index in live:
            groups.setdefault(state.request.group_key, []).append(
                (state, chunk_index))
        for group_key, items in groups.items():
            spec = items[0][0].spec
            prepared = self.store.get(group_key[:-1])
            model = self.model_for(group_key[-1])
            payload = self._payload_for(group_key, prepared, spec, model)
            if spec.mergeable and len(items) > 1:
                self._execute_merged(payload, items)
            else:
                self._execute_chunkwise(payload, spec, items)
        for state, _ in live:
            if state.first_dispatch_tick is None:
                state.first_dispatch_tick = tick

    def _execute_merged(self, payload: tuple,
                        items: List[Tuple[_RequestState, int]]) -> None:
        """Uniform-kind cross-request ray merging: concatenate the
        chunks' rays into one bundle, re-chunk adaptively, and scatter
        rows back by offset — bitwise-safe because the uniform forward
        is per-ray deterministic (pinned in the byte-identity suite)."""
        model, cameras, src, maps, num_points, near, far = payload
        origins = np.concatenate(
            [state.bundle.origins[state.chunks[i].start:
                                  state.chunks[i].stop]
             for state, i in items], axis=0)
        directions = np.concatenate(
            [state.bundle.directions[state.chunks[i].start:
                                     state.chunks[i].stop]
             for state, i in items], axis=0)
        views = len(cameras)
        merged_chunk = _renderer().adaptive_chunk(len(origins), views,
                                                  num_points)
        slices = _renderer()._chunk_slices(len(origins), merged_chunk)
        tasks = [(origins[start:stop], directions[start:stop])
                 for start, stop in slices]
        results = frame_pool.map_chunks(_uniform_batch_chunk, payload,
                                        tasks, self.config.workers)
        flat = np.concatenate(results, axis=0)
        self.counters["merged_rays"] += len(origins)
        offset = 0
        for state, i in items:
            chunk = state.chunks[i]
            state.out[chunk.start:chunk.stop] = \
                flat[offset:offset + chunk.rays]
            offset += chunk.rays
            state.done_chunks += 1

    def _execute_chunkwise(self, payload: tuple, spec: QualitySpec,
                           items: List[Tuple[_RequestState, int]]) -> None:
        """Chunk-preserving coalescing: every task is exactly one chunk
        of a request's direct render (its own slice geometry and, for
        hierarchical, its pre-drawn uniforms), so many requests share
        one pool dispatch without perturbing any request's numerics."""
        tasks = []
        for state, i in items:
            chunk = state.chunks[i]
            origins = state.bundle.origins[chunk.start:chunk.stop]
            directions = state.bundle.directions[chunk.start:chunk.stop]
            if spec.kind == "hierarchical":
                tasks.append((origins, directions, chunk.uniforms))
            else:
                tasks.append((origins, directions))
        results = frame_pool.map_chunks(_CHUNK_FUNCTIONS[spec.kind],
                                        payload, tasks,
                                        self.config.workers)
        for (state, i), result in zip(items, results):
            chunk = state.chunks[i]
            if spec.kind == "gen_nerf":
                pixels, points = result
                state.focused_points += int(points)
            else:
                pixels = result
            state.out[chunk.start:chunk.stop] = pixels
            state.done_chunks += 1

    # ------------------------------------------------------------------
    def _respond(self, state: _RequestState, tick: int) -> RenderResponse:
        stats: Dict[str, Any] = {
            "rays": len(state.bundle), "chunks": len(state.chunks),
            "first_dispatch_tick": state.first_dispatch_tick}
        if state.spec.kind == "gen_nerf":
            stats["avg_focused_points"] = \
                state.focused_points / max(len(state.bundle), 1)
        if state.failed is not None:
            return RenderResponse(
                request_id=state.request.request_id, status="error",
                error=state.failed, submitted_tick=state.submitted_tick,
                completed_tick=tick, stats=stats)
        self.counters["completed"] += 1
        self._latencies.append(tick - state.submitted_tick)
        return RenderResponse(
            request_id=state.request.request_id, status="ok",
            image=state.out.reshape(state.rows, state.cols, 3),
            submitted_tick=state.submitted_tick, completed_tick=tick,
            stats=stats)

    # ------------------------------------------------------------------
    def stats_row(self, tick: int) -> Dict[str, Any]:
        """The scheduler's service metrics at ``tick`` — per-request
        p50/p99 latency (deterministic nearest-rank), throughput, and
        batch occupancy."""
        dispatches = self.counters["dispatches"]
        rays = self.counters["batched_rays"]
        return {
            "tick": int(tick),
            "submitted": self.counters["submitted"],
            "completed": self.counters["completed"],
            "failed": self.counters["failed"],
            "shed": self.counters["shed"],
            "dispatches": dispatches,
            "batched_rays": rays,
            "merged_rays": self.counters["merged_rays"],
            "p50_latency_ticks": percentile(self._latencies, 50),
            "p99_latency_ticks": percentile(self._latencies, 99),
            "rays_per_tick": rays / max(int(tick), 1),
            "batch_occupancy": (rays / dispatches
                                / self.config.max_batch
                                if dispatches else 0.0),
            "scene_hits": self.store.hits,
            "scene_misses": self.store.misses,
            "scene_evictions": self.store.evictions,
        }

    def emit_stats(self, tick: int) -> Dict[str, Any]:
        row = self.stats_row(tick)
        log.event(_LOG, "serve.stats", level=logging.INFO, **row)
        return row


def percentile(values: Sequence[int], q: float) -> float:
    """Deterministic nearest-rank percentile (no interpolation — the
    artefact must not depend on numpy quantile policy)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, int(math.ceil(q / 100.0 * len(ordered))))
    return float(ordered[min(rank, len(ordered)) - 1])


# ----------------------------------------------------------------------
# Deterministic traffic replay (the serve_replay harness)
# ----------------------------------------------------------------------
def synthetic_trace(seed: int, clients: int, requests_per_client: int,
                    scenes: Sequence[str] = ("fern",),
                    qualities: Sequence[str] = ("standard",),
                    mean_gap: int = 3, step: int = 8,
                    image_scale: float = 1 / 16, views: int = 4,
                    scene_seed: int = 1,
                    burst: bool = False
                    ) -> List[Tuple[int, RenderRequest]]:
    """A seeded open-loop arrival schedule: ``clients`` independent
    clients each issuing ``requests_per_client`` requests with seeded
    inter-arrival gaps on the virtual clock (``burst`` collapses every
    arrival to tick 0 — the backpressure stressor).  Returns
    (arrival_tick, request) pairs sorted by (tick, request_id) — fully
    deterministic in (seed, parameters).
    """
    rng = np.random.default_rng(
        (int(seed), zlib.crc32(b"serve-trace"), int(clients)))
    arrivals: List[Tuple[int, RenderRequest]] = []
    for client in range(int(clients)):
        tick = 0 if burst else int(rng.integers(0, mean_gap + 1))
        for index in range(int(requests_per_client)):
            scene = scenes[int(rng.integers(len(scenes)))]
            quality = qualities[int(rng.integers(len(qualities)))]
            arrivals.append((tick, RenderRequest(
                request_id=f"c{client:03d}-r{index:03d}", scene=scene,
                quality=quality, step=step, image_scale=image_scale,
                views=views, scene_seed=scene_seed)))
            gap = 0 if burst else int(rng.integers(1, 2 * mean_gap + 1))
            tick += gap
    arrivals.sort(key=lambda pair: (pair[0], pair[1].request_id))
    return arrivals


@dataclass
class ReplayResult:
    """One replayed trace: every response (arrival order; shed requests
    included with ``status="shed"``), the final virtual tick, and the
    scheduler that served it (counters, batch log, store)."""

    responses: List[RenderResponse]
    ticks: int
    scheduler: RenderScheduler

    def ok_responses(self) -> List[RenderResponse]:
        return [r for r in self.responses if r.status == "ok"]

    def pixels_crc32(self) -> int:
        """Checksum of every ok image in request-id order — the
        byte-stability witness committed in the artefact."""
        crc = 0
        for response in sorted(self.ok_responses(),
                               key=lambda r: r.request_id):
            crc = zlib.crc32(response.image.tobytes(), crc)
        return crc


def replay(trace: Sequence[Tuple[int, RenderRequest]],
           config: Optional[ServeConfig] = None,
           scheduler: Optional[RenderScheduler] = None,
           store: Optional[SceneStore] = None,
           models: Optional[Dict[str, Any]] = None) -> ReplayResult:
    """Drive a scheduler through an arrival trace on the virtual clock.

    Purely synchronous — no ``time.time()`` or sleeps anywhere in the
    measured path (pinned in ``tests/core/test_serve_properties.py``);
    tick T submits every arrival scheduled at T, then runs the
    scheduler's tick.  Runs until the queue drains after the last
    arrival.
    """
    scheduler = scheduler or RenderScheduler(config, store=store,
                                             models=models)
    by_tick: Dict[int, List[RenderRequest]] = {}
    for tick, request in trace:
        by_tick.setdefault(int(tick), []).append(request)
    last_arrival = max(by_tick) if by_tick else 0
    responses: List[RenderResponse] = []
    tick = 0
    while True:
        for request in by_tick.get(tick, ()):
            try:
                scheduler.submit(request, tick)
            except ServiceOverloaded as error:
                responses.append(RenderResponse(
                    request_id=request.request_id, status="shed",
                    error=str(error), submitted_tick=tick,
                    completed_tick=tick))
            except ServeError as error:
                responses.append(RenderResponse(
                    request_id=request.request_id, status="error",
                    error=str(error), submitted_tick=tick,
                    completed_tick=tick))
        responses.extend(scheduler.run_tick(tick))
        if tick >= last_arrival and scheduler.idle:
            break
        tick += 1
        if tick > last_arrival + 100_000:
            raise RuntimeError("replay did not drain; set "
                               "request_deadline for hung requests")
    scheduler.emit_stats(tick)
    return ReplayResult(responses=responses, ticks=tick,
                        scheduler=scheduler)


# ----------------------------------------------------------------------
# The serve_replay experiment unit (registered in repro.core.registry)
# ----------------------------------------------------------------------
def _serve_replay_unit(level: int, requests_per_client: int, seed: int,
                       batch_window: int, max_batch: int, queue_limit: int,
                       scene_capacity: int, scenes: Sequence[str],
                       qualities: Sequence[str], image_scale: float,
                       views: int, step: int, source_points: int,
                       mean_gap: int, burst: bool = False,
                       workers: Optional[int] = 1) -> Dict[str, Any]:
    """One concurrency level of the ``serve_replay`` experiment: replay
    a deterministic synthetic trace of ``level`` clients through a
    fresh scheduler and summarise the service metrics."""
    config = ServeConfig(batch_window=batch_window, max_batch=max_batch,
                         queue_limit=queue_limit,
                         scene_capacity=scene_capacity, workers=workers,
                         source_points=source_points)
    trace = synthetic_trace(seed=seed, clients=level,
                            requests_per_client=requests_per_client,
                            scenes=tuple(scenes),
                            qualities=tuple(qualities),
                            mean_gap=mean_gap, step=step,
                            image_scale=image_scale, views=views,
                            burst=burst)
    result = replay(trace, config)
    stats = result.scheduler.stats_row(result.ticks)
    return {
        "level": int(level), "mode": "burst" if burst else "open",
        "submitted_total": len(trace),
        "accepted": stats["submitted"], "completed": stats["completed"],
        "shed": stats["shed"], "failed": stats["failed"],
        "dispatches": stats["dispatches"],
        "batched_rays": stats["batched_rays"],
        "merged_rays": stats["merged_rays"],
        "rays_per_dispatch": (stats["batched_rays"]
                              / max(stats["dispatches"], 1)),
        "batch_occupancy": stats["batch_occupancy"],
        "p50_latency_ticks": stats["p50_latency_ticks"],
        "p99_latency_ticks": stats["p99_latency_ticks"],
        "makespan_ticks": result.ticks,
        "rays_per_tick": stats["rays_per_tick"],
        "scene_misses": stats["scene_misses"],
        "scene_hits": stats["scene_hits"],
        "pixels_crc32": f"{result.pixels_crc32():08x}",
    }


def render_serve_replay(rows: List[Dict[str, Any]],
                        params: Mapping[str, Any]) -> str:
    table = [[row["level"], row["mode"], row["submitted_total"],
              row["completed"], row["shed"], row["failed"],
              row["dispatches"], row["rays_per_dispatch"],
              row["batch_occupancy"], row["p50_latency_ticks"],
              row["p99_latency_ticks"], row["makespan_ticks"],
              row["rays_per_tick"], row["pixels_crc32"]]
             for row in rows]
    text = format_table(
        ["Clients", "Mode", "Reqs", "Done", "Shed", "Fail", "Disp",
         "Rays/disp", "Occup", "p50", "p99", "Ticks", "Rays/tick",
         "Pixels crc32"],
        table,
        title=f"serve_replay — cross-request micro-batching at "
              f"window={params['batch_window']} ticks, "
              f"max_batch={params['max_batch']} rays")
    text += ("\n\nVirtual-clock replay: latencies are scheduler ticks, "
             "not wall time; every row is deterministic in the trace "
             "seed.\nThe burst row stresses backpressure: arrivals "
             "beyond queue_limit shed with a 429-style refusal.")
    return text


# ----------------------------------------------------------------------
# The stdio daemon (``python -m repro serve``)
# ----------------------------------------------------------------------
_REQUEST_FIELDS = {"id", "scene", "quality", "step", "image_scale",
                   "views", "scene_seed", "chunk"}


def request_from_json(payload: Mapping[str, Any],
                      default_id: str) -> RenderRequest:
    """Build (and validate) a request from one JSON-lines object."""
    if not isinstance(payload, Mapping):
        raise ServeError("request must be a JSON object")
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise ServeError(f"unknown request field(s) {unknown}; "
                         f"valid: {sorted(_REQUEST_FIELDS)}")
    if "scene" not in payload:
        raise ServeError("request must name a scene")
    request = RenderRequest(
        request_id=str(payload.get("id", default_id)),
        scene=str(payload["scene"]),
        quality=str(payload.get("quality", "standard")),
        step=int(payload.get("step", 8)),
        image_scale=float(payload.get("image_scale", 1 / 16)),
        views=int(payload.get("views", 4)),
        scene_seed=int(payload.get("scene_seed", 1)),
        chunk=(int(payload["chunk"]) if payload.get("chunk") is not None
               else None))
    request.validate()
    return request


def response_to_json(response: RenderResponse,
                     out_dir: Optional[str] = None) -> Dict[str, Any]:
    """The wire form of a response: shape + crc32 witness instead of
    raw pixels (``out_dir`` additionally lands the image as
    ``<request_id>.npy``)."""
    payload: Dict[str, Any] = {
        "id": response.request_id, "status": response.status,
        "latency_ticks": response.latency_ticks}
    if response.error is not None:
        payload["error"] = response.error
    if response.image is not None:
        payload["shape"] = list(response.image.shape)
        payload["crc32"] = f"{zlib.crc32(response.image.tobytes()):08x}"
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"{response.request_id}.npy")
            np.save(path, response.image)
            payload["path"] = path
    return payload


def run_daemon(config: Optional[ServeConfig] = None, input_stream=None,
               output_stream=None, tick_s: float = 0.02,
               out_dir: Optional[str] = None,
               stats_interval: int = 256) -> Dict[str, Any]:
    """The long-lived service loop: JSON-lines requests on
    ``input_stream``, JSON-lines responses on ``output_stream``.

    Wall time exists *only* here: each scheduler tick corresponds to
    one ``tick_s`` select window on stdin (falling back to
    one-tick-per-line iteration for streams without a selectable file
    descriptor, e.g. tests feeding a StringIO).  The scheduler itself
    stays on its virtual clock.  EOF drains the queue and returns the
    final stats row.
    """
    import sys

    config = config or ServeConfig.from_env()
    input_stream = input_stream if input_stream is not None else sys.stdin
    output_stream = output_stream if output_stream is not None \
        else sys.stdout
    scheduler = RenderScheduler(config)
    tick = 0
    sequence = 0

    def emit(response: RenderResponse) -> None:
        output_stream.write(
            json.dumps(response_to_json(response, out_dir)) + "\n")
        output_stream.flush()

    def handle_line(line: str) -> None:
        nonlocal sequence
        line = line.strip()
        if not line:
            return
        sequence += 1
        default_id = f"req-{sequence:06d}"
        try:
            request = request_from_json(json.loads(line), default_id)
        except (json.JSONDecodeError, ValueError, TypeError) as error:
            emit(RenderResponse(request_id=default_id, status="error",
                                error=str(error), submitted_tick=tick,
                                completed_tick=tick))
            return
        try:
            scheduler.submit(request, tick)
        except (ServeError, ServiceOverloaded) as error:
            status = "shed" if isinstance(error, ServiceOverloaded) \
                else "error"
            emit(RenderResponse(request_id=request.request_id,
                                status=status, error=str(error),
                                submitted_tick=tick, completed_tick=tick))

    def advance() -> None:
        nonlocal tick
        for response in scheduler.run_tick(tick):
            emit(response)
        if stats_interval and tick and tick % stats_interval == 0:
            scheduler.emit_stats(tick)
        tick += 1

    selectable = hasattr(input_stream, "fileno")
    if selectable:
        try:
            input_stream.fileno()
        except (OSError, ValueError):
            selectable = False
    if selectable:
        import select
        eof = False
        while not (eof and scheduler.idle):
            if not eof:
                ready, _, _ = select.select([input_stream], [], [],
                                            tick_s)
            else:
                ready = []
            if ready:
                line = input_stream.readline()
                if line == "":
                    eof = True
                else:
                    handle_line(line)
                    continue
            advance()
    else:
        for line in input_stream:
            handle_line(line)
            advance()
        while not scheduler.idle:
            advance()
    return scheduler.emit_stats(tick)
