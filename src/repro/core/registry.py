"""Declarative experiment registry: one :class:`Experiment` per paper
table/figure, all driven through one lifecycle.

Every experiment is a registered, declarative object with four hooks —

* ``prepare(ctx, params)``  -> shared state for the sequential path
  (worker processes rebuild it deterministically from the unit args);
* ``units(ctx, params, shared)`` -> a picklable ``(function, kwargs)``
  task list, fanned out over :func:`repro.core.run_variants`;
* ``reduce(results, params)``    -> the experiment's row structure
  (what the legacy ``run_*`` functions returned);
* ``render(rows, params)``       -> the committed artefact text under
  ``benchmarks/results/`` — byte-identical to the historical
  harness output.

Adding a scenario is a ~20-line :func:`register` call instead of a new
hand-rolled harness; ``python -m repro`` (see :mod:`repro.cli`) lists,
runs, and sweeps everything registered here, and the ``benchmarks/``
suite regenerates the committed artefacts through the same objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..hardware.accelerator import variant_config
from ..scenes.datasets import DATASETS
from . import experiments as E
from .context import LLFF_EVAL_SCENES, RunContext
from .figures import ascii_line_chart, stacked_latency_chart
from .pipeline import CoDesignPipeline
from .reporting import format_table, ratio_note
from .runner import run_variants
from .scene_cache import exported_cache_knob
from . import serve as S

Task = Tuple[Callable, Dict[str, Any]]

# Paper reference values quoted inside the committed artefacts.
PAPER_TABLE2_MFLOPS = {"vanilla IBRNet": 13.94, "- ray transformer": 13.25,
                       "+ Ray-Mixer": 13.88, "+ Coarse-then-Focus": 4.27,
                       "+ channel pruning (10 views)": 0.80,
                       "+ channel pruning (6 views)": 0.51,
                       "+ channel pruning (4 views)": 0.37}
PAPER_TABLE3_MFLOPS = {("IBRNet", 4): 6.31, ("Gen-NeRF", 4): 0.368,
                       ("IBRNet", 10): 13.94, ("Gen-NeRF", 10): 0.803}
PAPER_BEST_FPS_2080TI = 0.249        # Sec. 2.3: "<= 0.249 FPS"
PAPER_ATTENTION_TIME_SHARE = 0.441   # Sec. 2.3, on LLFF
PAPER_SPEEDUP_2080TI = {"deepvoxels": 239.3, "nerf_synthetic": 246.0,
                        "llff": 255.8}
PAPER_SPEEDUP_TX2_LLFF = 7448.9
PAPER_MIN_SPEEDUP = 208.8            # Fig. 11: ">= 208.8x" everywhere


# ----------------------------------------------------------------------
# Experiment objects
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """One registry run: the reduced rows plus the rendered artefact."""

    name: str
    params: Dict[str, Any]
    rows: Any
    text: str


@dataclass
class Experiment:
    """One declarative paper experiment.

    ``params`` is the committed-artefact configuration; a run may
    override any subset (unknown keys are rejected).  ``scale_rules``
    maps work-knob parameters to their floor value: a
    :class:`RunContext` with ``scale != 1`` multiplies each knob and
    clamps at the floor, giving a uniform "downscaled run" semantics
    for the CLI and smoke tests.
    """

    name: str
    title: str
    kind: str               # "table" | "figure" | "ablation"
    artefact: str           # stem under benchmarks/results/
    description: str
    params: Mapping[str, Any]
    units: Callable[[RunContext, Dict[str, Any], Any], List[Task]]
    reduce: Callable[[List[Any], Dict[str, Any]], Any]
    render: Callable[[Any, Dict[str, Any]], str]
    prepare: Optional[Callable[[RunContext, Dict[str, Any]], Any]] = None
    scale_rules: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def bind(self, ctx: RunContext,
             overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Resolve the effective parameters for one run: defaults, then
        the context's scale and seed, then explicit overrides."""
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise KeyError(
                f"unknown parameter(s) {unknown} for experiment "
                f"{self.name!r}; valid: {sorted(self.params)}")
        params = dict(self.params)
        if ctx.scale != 1.0:
            for key, floor in self.scale_rules.items():
                value = params[key]
                scaled = value * ctx.scale
                if isinstance(value, int):
                    scaled = int(round(scaled))
                params[key] = max(floor, scaled)
        if ctx.seed is not None and "seed" in params:
            params["seed"] = ctx.seed
        params.update(overrides)
        return params

    # ------------------------------------------------------------------
    def run(self, ctx: Optional[RunContext] = None,
            **overrides) -> ExperimentResult:
        """prepare -> units -> fan-out -> reduce -> render.

        With one worker the shared ``prepare`` state is computed once
        and injected into every unit (the historical sequential path);
        with several, the picklable units rebuild it deterministically
        in their worker processes — rows are byte-identical either way.
        An explicit ``ctx.cache_dir`` is exported through the
        ``REPRO_CACHE_DIR`` knob for the duration of the run, so the
        sequential path and pool workers alike see the same disk cache.
        """
        ctx = ctx or RunContext()
        params = self.bind(ctx, overrides)
        with exported_cache_knob(ctx.cache_dir):
            tasks = self.units(ctx, params, None)
            count = ctx.resolve_workers(len(tasks))
            if count <= 1:
                shared = self.prepare(ctx, params) if self.prepare \
                    else None
                if shared is not None:
                    tasks = self.units(ctx, params, shared)
                results = [function(**kwargs) for function, kwargs in tasks]
            else:
                results = run_variants(tasks, workers=count,
                                       timeout=ctx.task_timeout,
                                       retries=ctx.retries)
        rows = self.reduce(results, params)
        text = self.render(rows, params)
        return ExperimentResult(name=self.name, params=params, rows=rows,
                                text=text)

    # ------------------------------------------------------------------
    def regenerate(self, ctx: Optional[RunContext] = None,
                   **overrides) -> Tuple[ExperimentResult, str]:
        """Run and atomically (re)write the committed artefact."""
        ctx = ctx or RunContext()
        result = self.run(ctx, **overrides)
        return result, ctx.write_artifact(self.artefact, result.text)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    if experiment.name in _REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} already "
                         f"registered")
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"available: {', '.join(_REGISTRY)}") from None


def experiment_names() -> List[str]:
    return list(_REGISTRY)


def all_experiments() -> List[Experiment]:
    return list(_REGISTRY.values())


def _single_unit(function: Callable, *param_names: str,
                 thread_workers: bool = False
                 ) -> Callable[[RunContext, Dict[str, Any], Any],
                               List[Task]]:
    """Units hook for one-body experiments: a single task carrying the
    named parameters.

    ``thread_workers`` forwards ``ctx.workers`` to the unit as
    ``workers=`` — a single task always resolves to the sequential
    outer path, so the unit is free to spend the whole budget on
    *intra-frame* sharding (``None`` autodetects inside the unit)."""
    def units(ctx, params, shared):
        kwargs = {name: params[name] for name in param_names}
        if thread_workers:
            kwargs["workers"] = ctx.workers
        return [(function, kwargs)]

    return units


def _first(results, params):
    return results[0]


# ----------------------------------------------------------------------
# Table 1 — area / power
# ----------------------------------------------------------------------
def _render_table1(rows, params) -> str:
    return format_table(
        ["Module", "Area mm^2", "Paper", "Power mW", "Paper"],
        rows, title="Table 1 — Gen-NeRF hardware module area/power")


register(Experiment(
    name="table1", title="Table 1 — area & power", kind="table",
    artefact="table1_area_power",
    description="Per-module area/power of the accelerator vs the "
                "paper's 28 nm @ 1 GHz budget.",
    params={},
    units=_single_unit(E._table1_unit),
    reduce=_first, render=_render_table1))


# ----------------------------------------------------------------------
# Fig. 2 — GPU latency breakdown
# ----------------------------------------------------------------------
def _render_fig2(results, params) -> str:
    rows = []
    for device, per_dataset in results.items():
        for dataset, phases in per_dataset.items():
            rows.append([device, dataset,
                         phases["acquire_features"], phases["mlp"],
                         phases["ray_transformer"], phases["others"],
                         phases["total"], phases["fps"]])
    text = format_table(
        ["Device", "Dataset", "Acquire s", "MLP s", "RayTrans s",
         "Others s", "Total s", "FPS"],
        rows, title="Fig. 2 — GPU latency breakdown (vanilla model)")
    best_fps = max(phases["fps"]
                   for phases in results["rtx2080ti"].values())
    attention = results["rtx2080ti"]["llff"]["attention_dnn_fraction"]
    text += "\n\n" + ratio_note(best_fps, PAPER_BEST_FPS_2080TI,
                                "best 2080Ti FPS")
    text += "\n" + ratio_note(attention, PAPER_ATTENTION_TIME_SHARE,
                              "ray-transformer share of DNN time (LLFF)")
    return text


register(Experiment(
    name="fig2", title="Fig. 2 — GPU latency breakdown", kind="figure",
    artefact="fig2_gpu_profile",
    description="Latency phases of the vanilla profiling workload on "
                "an RTX 2080Ti and a Jetson TX2.",
    params={},
    units=_single_unit(E._fig2_unit),
    reduce=_first, render=_render_fig2))


# ----------------------------------------------------------------------
# Fig. 9 — PSNR vs sampled points / MFLOPs
# ----------------------------------------------------------------------
def _fig9_units(ctx, params, shared) -> List[Task]:
    unit = dict(seed=params["seed"], step=params["step"],
                reference_points=params["reference_points"],
                pairs=tuple(tuple(pair) for pair in params["pairs"]),
                uniform_points=tuple(params["uniform_points"]),
                image_scale=params["image_scale"])
    return [(E._fig9_unit, dict(dataset=dataset, **unit))
            for dataset in params["datasets"]]


def _reduce_fig9(results, params):
    return dict(zip(params["datasets"], results))


def _render_fig9(results, params) -> str:
    rows = []
    for dataset, curves in results.items():
        for curve_name, points in curves.items():
            for point in points:
                rows.append([dataset, curve_name, point.label,
                             point.avg_points, point.mflops_per_pixel,
                             point.psnr])
    text = format_table(
        ["Dataset", "Curve", "Config", "Avg points", "MFLOPs/px", "PSNR"],
        rows, title="Fig. 9 — rendering quality vs sampling budget")
    for dataset, curves in results.items():
        chart = ascii_line_chart(
            {name: ([p.avg_points for p in pts], [p.psnr for p in pts])
             for name, pts in curves.items()},
            title=f"Fig. 9 (top) — {dataset}", x_label="avg points/ray",
            y_label="PSNR dB")
        text += "\n\n" + chart
    return text


register(Experiment(
    name="fig9", title="Fig. 9 — quality vs sampling budget",
    kind="figure", artefact="fig9_psnr_vs_points",
    description="Oracle-field PSNR of coarse-then-focus vs hierarchical "
                "sampling across the three dataset families.",
    params=dict(datasets=E.PROFILE_DATASETS, seed=3, step=4,
                reference_points=384, pairs=E.FIG9_PAIRS,
                uniform_points=E.FIG9_UNIFORM_POINTS, image_scale=1 / 8),
    units=_fig9_units, reduce=_reduce_fig9, render=_render_fig9,
    scale_rules={"reference_points": 64}))


# ----------------------------------------------------------------------
# Table 2 — component ablation
# ----------------------------------------------------------------------
def _table2_prepare_hook(ctx, params):
    # The shared prepare runs in the parent (sequential resolution
    # only), so the scene source-view renders may shard intra-frame.
    return E._table2_prepare(**params, workers=ctx.workers)


def _table2_units(ctx, params, shared) -> List[Task]:
    extra = {} if shared is None else {"prep": shared}
    return [(E._table2_unit, dict(kind=kind, **params, **extra))
            for kind in E.TABLE2_VARIANTS]


def _reduce_table2(results, params):
    return [row for unit_rows in results for row in unit_rows]


def _table2_cells(rows, scenes,
                  paper: Optional[Dict[str, float]] = None) -> List[list]:
    table = []
    for row in rows:
        cells = [row.method, row.mflops_per_pixel]
        for scene in scenes:
            psnr, lpips = row.per_scene[scene]
            cells.append(f"{psnr:.2f}/{lpips:.3f}")
        if paper is not None:
            cells.append(paper.get(row.method, float("nan")))
        table.append(cells)
    return table


def _render_table2(rows, params) -> str:
    # Scene columns in the canonical LLFF order, restricted to the
    # scenes this run actually trained on (downscaled runs may use a
    # subset; the committed artefact uses all four).
    scenes = [name for name in LLFF_EVAL_SCENES
              if name in params["scenes"]]
    return format_table(
        ["Method", "MFLOPs/px", *scenes, "paper MFLOPs/px"],
        _table2_cells(rows, scenes, paper=PAPER_TABLE2_MFLOPS),
        title="Table 2 — component ablation (PSNR/LPIPS-proxy)")


register(Experiment(
    name="table2", title="Table 2 — component ablation", kind="table",
    artefact="table2_ablation",
    description="Quality/FLOPs ladder of the technique stack, trained "
                "per variant on the four LLFF analogues.",
    params=dict(train_steps=300, eval_step=6, image_scale=1 / 10,
                num_points=20, seed=1, scenes=LLFF_EVAL_SCENES,
                num_source_views=10),
    prepare=_table2_prepare_hook, units=_table2_units,
    reduce=_reduce_table2, render=_render_table2,
    scale_rules={"train_steps": 6}))


# ----------------------------------------------------------------------
# Table 3 — per-scene finetuning
# ----------------------------------------------------------------------
_TABLE3_UNIT_KEYS = ("train_steps", "finetune_steps", "eval_step",
                     "image_scale", "num_points", "seed")


def _table3_prepare_hook(ctx, params):
    prep_keys = ("train_steps", "eval_step", "image_scale", "num_points",
                 "seed")
    prep_params = {key: params[key] for key in prep_keys}
    return {views: E._table3_prepare(views=views, workers=ctx.workers,
                                     **prep_params)
            for views in params["view_counts"]}


def _table3_units(ctx, params, shared) -> List[Task]:
    unit_params = {key: params[key] for key in _TABLE3_UNIT_KEYS}
    tasks: List[Task] = []
    for views in params["view_counts"]:
        for method in E.TABLE3_METHODS:
            kwargs = dict(method=method, views=views, **unit_params)
            if shared is not None:
                kwargs["prep"] = shared[views]
            tasks.append((E._table3_unit, kwargs))
    return tasks


def _reduce_table3(results, params):
    return list(results)


def _render_table3(rows, params) -> str:
    return format_table(
        ["Method", "MFLOPs/px", *LLFF_EVAL_SCENES],
        _table2_cells(rows, LLFF_EVAL_SCENES),
        title="Table 3 — per-scene finetuning (PSNR/LPIPS-proxy)")


register(Experiment(
    name="table3", title="Table 3 — per-scene finetuning", kind="table",
    artefact="table3_finetune",
    description="IBRNet vs Gen-NeRF after per-scene finetuning at 4 "
                "and 10 source views.",
    params=dict(train_steps=260, finetune_steps=60, eval_step=6,
                image_scale=1 / 10, num_points=20, seed=1,
                view_counts=(4, 10)),
    prepare=_table3_prepare_hook, units=_table3_units,
    reduce=_reduce_table3, render=_render_table3,
    scale_rules={"train_steps": 5, "finetune_steps": 3}))


# ----------------------------------------------------------------------
# Fig. 10 — throughput comparison
# ----------------------------------------------------------------------
def _render_fig10(results, params) -> str:
    rows = []
    for dataset, r in results.items():
        rows.append([dataset, r["gen_nerf_fps"], r["rtx2080ti_fps"],
                     r["tx2_fps"], r["speedup_vs_2080ti"],
                     r["speedup_vs_tx2"]])
    text = format_table(
        ["Dataset", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS",
         "Speedup vs 2080Ti", "vs TX2"],
        rows, title="Fig. 10 — throughput comparison")
    notes = [ratio_note(results[d]["speedup_vs_2080ti"],
                        PAPER_SPEEDUP_2080TI[d], f"{d} speedup vs 2080Ti")
             for d in results]
    notes.append(ratio_note(results["llff"]["speedup_vs_tx2"],
                            PAPER_SPEEDUP_TX2_LLFF, "llff speedup vs TX2"))
    return text + "\n\n" + "\n".join(notes)


register(Experiment(
    name="fig10", title="Fig. 10 — throughput comparison", kind="figure",
    artefact="fig10_fps",
    description="Gen-NeRF accelerator FPS vs RTX 2080Ti and Jetson TX2 "
                "on the three datasets.",
    params={"seed": 0},
    units=_single_unit(E._fig10_unit, "seed", thread_workers=True),
    reduce=_first, render=_render_fig10))


# ----------------------------------------------------------------------
# Fig. 11 — scalability sweeps
# ----------------------------------------------------------------------
def _fig11_units(ctx, params, shared) -> List[Task]:
    # ``workers=ctx.workers`` reaches inside each sweep point: when the
    # sweep itself fans out over run_variants the nested-pool guard
    # resolves it back to 1 in the workers, and when the sweep runs
    # sequentially (1-CPU host, REPRO_WORKERS=1) intra-frame sharding
    # resolves to 1 as well — the knob only bites where cores are free.
    seed = params["seed"]
    tasks = [(E._fig11_unit, dict(axis="views", value=int(views),
                                  seed=seed, workers=ctx.workers))
             for views in params["view_counts"]]
    tasks += [(E._fig11_unit, dict(axis="points", value=int(points),
                                   seed=seed, workers=ctx.workers))
              for points in params["point_counts"]]
    return tasks


def _reduce_fig11(results, params):
    split = len(params["view_counts"])
    return {"views": results[:split], "points": results[split:]}


def _render_fig11(results, params) -> str:
    view_rows = [[r["num_views"], r["gen_nerf_fps"], r["rtx2080ti_fps"],
                  r["tx2_fps"], r["speedup_vs_2080ti"]]
                 for r in results["views"]]
    point_rows = [[r["points_per_ray"], r["gen_nerf_fps"],
                   r["rtx2080ti_fps"], r["tx2_fps"],
                   r["speedup_vs_2080ti"]]
                  for r in results["points"]]
    text = format_table(
        ["#Views", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS", "Speedup"],
        view_rows, title="Fig. 11 (left) — FPS vs #source views")
    text += "\n\n" + format_table(
        ["#Points", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS", "Speedup"],
        point_rows, title="Fig. 11 (right) — FPS vs #sampled points")
    text += "\n\n" + ascii_line_chart(
        {"gen_nerf": ([r["num_views"] for r in results["views"]],
                      [r["gen_nerf_fps"] for r in results["views"]]),
         "2080Ti x100": ([r["num_views"] for r in results["views"]],
                         [100 * r["rtx2080ti_fps"]
                          for r in results["views"]])},
        title="Fig. 11 (left) — FPS vs #views (GPU scaled x100)",
        x_label="#source views", y_label="FPS")
    return text


register(Experiment(
    name="fig11", title="Fig. 11 — scalability", kind="figure",
    artefact="fig11_scalability",
    description="Accelerator advantage vs #source views and #sampled "
                "points on NeRF-Synthetic 800x800.",
    params=dict(view_counts=(10, 6, 4, 2, 1),
                point_counts=(128, 112, 96, 80, 64), seed=0),
    units=_fig11_units, reduce=_reduce_fig11, render=_render_fig11))


# ----------------------------------------------------------------------
# Table 4 — device comparison
# ----------------------------------------------------------------------
def _render_table4(rows, params) -> str:
    table = [[r["device"], r["sram_mb"], r["area_mm2"], r["frequency_ghz"],
              r["dram"], r["bandwidth_gb_s"], r["technology_nm"],
              r["typical_power_w"], r["typical_fps"]] for r in rows]
    text = format_table(
        ["Device", "SRAM MB", "Area mm^2", "GHz", "DRAM", "GB/s", "nm",
         "Power W", "Typical FPS"],
        table, title="Table 4 — accelerator and device comparison")
    simulated = rows[0]
    paper_gen_nerf = next(r for r in rows
                          if r["device"] == "Gen-NeRF (paper)")
    text += "\n\n" + ratio_note(simulated["typical_fps"],
                                paper_gen_nerf["typical_fps"],
                                "simulated vs paper typical FPS")
    return text


register(Experiment(
    name="table4", title="Table 4 — device comparison", kind="table",
    artefact="table4_devices",
    description="Device spec sheet: our simulated Gen-NeRF row next to "
                "the paper's reported devices.",
    params={"seed": 0},
    units=_single_unit(E._table4_unit, "seed", thread_workers=True),
    reduce=_first, render=_render_table4))


# ----------------------------------------------------------------------
# Fig. 12 — dataflow / storage ablation
# ----------------------------------------------------------------------
def _fig12_units(ctx, params, shared) -> List[Task]:
    return [(E._fig12_unit, dict(views=views, seed=params["seed"],
                                 workers=ctx.workers))
            for views in params["view_counts"]]


def _reduce_fig12(results, params):
    return dict(zip(params["view_counts"], results))


def _render_fig12(results, params) -> str:
    rows = []
    for views, variants in results.items():
        for name, values in variants.items():
            rows.append([views, name, values["data_s"] * 1e3,
                         values["compute_s"] * 1e3,
                         values["total_s"] * 1e3,
                         values["exposed_data_s"] * 1e3,
                         values["utilization"], values["prefetch_mb"]])
    text = format_table(
        ["#Views", "Variant", "Data ms", "Compute ms", "Total ms",
         "Exposed-data ms", "PE util", "Prefetch MB"],
        rows, title="Fig. 12 — dataflow & storage-format ablation")
    for views, variants in results.items():
        chart = stacked_latency_chart(
            {name: {"data(exposed)": v["exposed_data_s"],
                    "compute": v["compute_s"]}
             for name, v in variants.items()},
            title=f"Fig. 12 — latency breakdown at {views} views")
        text += "\n\n" + chart
    return text


register(Experiment(
    name="fig12", title="Fig. 12 — dataflow ablation", kind="figure",
    artefact="fig12_dataflow_ablation",
    description="Latency/utilisation of ours vs Var-1/2/3 dataflow and "
                "storage variants at {10, 6, 2} views.",
    params=dict(view_counts=(10, 6, 2), seed=0),
    units=_fig12_units, reduce=_reduce_fig12, render=_render_fig12))


# ----------------------------------------------------------------------
# Extension ablations
# ----------------------------------------------------------------------
def _render_coarse_budget(rows, params) -> str:
    table = [[row["coarse_points"], row["tau"], row["avg_points"],
              row["psnr"]] for row in rows]
    return format_table(["N_c", "tau", "avg points", "PSNR"],
                        table, title="Ablation — coarse budget vs quality")


register(Experiment(
    name="ablation_coarse_budget",
    title="Ablation — coarse budget vs quality", kind="ablation",
    artefact="ablation_coarse_budget",
    description="PSNR sensitivity to the coarse-pass budget N_c and "
                "critical-point threshold tau.",
    params=dict(dataset="nerf_synthetic", seed=3, step=8,
                image_scale=1 / 8, coarse_counts=(4, 8, 16, 32),
                taus=(1e-4, 1e-3, 1e-2), focused=32),
    units=_single_unit(E._coarse_budget_unit, "dataset", "seed", "step",
                       "image_scale", "coarse_counts", "taus", "focused"),
    reduce=_first, render=_render_coarse_budget))


def _render_patch_candidates(rows, params) -> str:
    table = [[row["num_candidates"], row["fps"], row["prefetch_mb"],
              row["utilization"]] for row in rows]
    return format_table(["M", "FPS", "Prefetch MB", "PE util"],
                        table, title="Ablation — candidate-set size")


register(Experiment(
    name="ablation_patch_candidates",
    title="Ablation — candidate-set size", kind="ablation",
    artefact="ablation_patch_candidates",
    description="Prefetch traffic and FPS vs the scheduler's "
                "candidate-shape menu size M.",
    params={"seed": 0},
    units=_single_unit(E._patch_candidate_unit, "seed"),
    reduce=_first, render=_render_patch_candidates))


# ----------------------------------------------------------------------
# occupancy_profile — per-ray valid-sample occupancy by scene family
# ----------------------------------------------------------------------
_OCCUPANCY_BASE_KEYS = ("seeds", "step", "image_scale", "coarse_points",
                        "focused", "n_max", "tau")


def _occupancy_units(ctx, params, shared) -> List[Task]:
    base = {key: params[key] for key in _OCCUPANCY_BASE_KEYS}
    return [(E._occupancy_profile_unit, dict(family=family, **base))
            for family in params["families"]]


def _reduce_rows_list(results, params):
    return list(results)


def _render_occupancy(rows, params) -> str:
    n_max = params["n_max"]
    table = []
    for row in rows:
        total = max(sum(row["histogram"]), 1)
        spark = "".join(
            " .:-=+*#%@"[min(9, (10 * count) // total)]
            for count in row["histogram"])
        table.append([row["family"], row["rays"],
                      100.0 * row["mean_occupancy"],
                      100.0 * row["empty_fraction"],
                      100.0 * row["saturated_fraction"],
                      f"|{spark}|"])
    body = format_table(
        ["Family", "Rays", "Mean occ %", "Empty %", "Saturated %",
         "Hist 0..100%"],
        table, title="Per-ray valid-sample occupancy (counts / n_max)",
        precision=1)
    return (body + "\n\n"
            f"n_max={n_max}, N_c={params['coarse_points']}, "
            f"N_f={params['focused']}, tau={params['tau']}; oracle coarse "
            "pass, seeds " + ",".join(str(s) for s in params["seeds"])
            + ".\nThe LLFF analogues pin near saturation; 'thicket' keeps "
            "occupancy high\nbut unsaturated and 'orbit_sparse' holds the "
            "sub-50% regime the packed\nfine pass (docs/performance.md) is "
            "benchmarked in.\n")


# ----------------------------------------------------------------------
# serve_replay — deterministic traffic replay through the render daemon
# ----------------------------------------------------------------------
_SERVE_REPLAY_BASE_KEYS = (
    "requests_per_client", "seed", "batch_window", "max_batch",
    "queue_limit", "scene_capacity", "scenes", "qualities", "image_scale",
    "views", "step", "source_points", "mean_gap")


def _serve_replay_units(ctx, params, shared) -> List[Task]:
    base = {key: params[key] for key in _SERVE_REPLAY_BASE_KEYS}
    base["workers"] = ctx.workers
    tasks = [(S._serve_replay_unit, dict(level=int(level), burst=False,
                                         **base))
             for level in params["levels"]]
    # One burst row past the high-water mark proves deterministic
    # shedding in the committed artefact.
    tasks.append((S._serve_replay_unit,
                  dict(level=int(params["burst_clients"]), burst=True,
                       **base)))
    return tasks


def _reduce_serve_replay(results, params):
    return list(results)


register(Experiment(
    name="serve_replay", title="serve — deterministic traffic replay",
    kind="table", artefact="serve_replay",
    description="Cross-request micro-batching service replayed against "
                "seeded synthetic traffic at several concurrency levels "
                "(virtual clock; byte-stable pixels).",
    params=dict(seed=0, levels=(1, 4, 16), requests_per_client=3,
                batch_window=4, max_batch=192, queue_limit=12,
                scene_capacity=2, scenes=("fern", "fortress"),
                qualities=("draft", "standard", "high", "gen_nerf"),
                image_scale=1 / 16, views=4, step=8, source_points=32,
                mean_gap=3, burst_clients=24),
    units=_serve_replay_units, reduce=_reduce_serve_replay,
    render=S.render_serve_replay,
    scale_rules={"requests_per_client": 1, "burst_clients": 4}))


register(Experiment(
    name="occupancy_profile",
    title="Occupancy — valid samples per ray by family", kind="table",
    artefact="occupancy_profile",
    description="Per-ray occupancy histograms of the coarse-then-focus "
                "plan across all scene families; the evidence that the "
                "occupancy-stress families de-saturate n_max and the "
                "sparse fine pass has something to skip.",
    params=dict(families=E.OCCUPANCY_FAMILIES, seeds=(1, 2, 3), step=4,
                image_scale=1 / 8, coarse_points=64, focused=8, n_max=32,
                tau=1e-3),
    units=_occupancy_units, reduce=_reduce_rows_list,
    render=_render_occupancy))


# ----------------------------------------------------------------------
# Grid sweeps (CLI `python -m repro sweep`)
# ----------------------------------------------------------------------
SWEEP_VARIANTS = ("ours", "var1", "var2", "var3")
SWEEP_AXES = ("dataset", "views", "points", "variant")
SWEEP_DEFAULT_GRID = {"dataset": ("nerf_synthetic",), "views": (6,),
                      "points": (64,), "variant": ("ours",)}


def parse_sweep_grid(tokens: Sequence[str]) -> Dict[str, tuple]:
    """Parse ``axis=v1,v2,...`` grid tokens into a full sweep grid.

    Axes: ``dataset`` (a dataset family), ``views`` / ``points``
    (positive ints), ``variant`` (a :func:`variant_config` name — the
    hardware axis).  Unspecified axes take the single-point defaults.
    """
    grid = {axis: tuple(values)
            for axis, values in SWEEP_DEFAULT_GRID.items()}
    for token in tokens:
        axis, _, values_text = token.partition("=")
        if axis not in SWEEP_AXES or not values_text:
            raise ValueError(
                f"bad grid token {token!r}; expected axis=v1,v2 with "
                f"axis in {SWEEP_AXES}")
        values = [value for value in values_text.split(",") if value]
        if not values:
            raise ValueError(
                f"bad grid token {token!r}; expected axis=v1,v2 with "
                f"axis in {SWEEP_AXES}")
        if axis in ("views", "points"):
            parsed = []
            for value in values:
                try:
                    number = int(value)
                except ValueError:
                    raise ValueError(f"{axis} values must be integers, "
                                     f"got {value!r}") from None
                if number <= 0:
                    raise ValueError(f"{axis} values must be positive, "
                                     f"got {value!r}")
                parsed.append(number)
            grid[axis] = tuple(parsed)
        elif axis == "dataset":
            for value in values:
                if value not in DATASETS:
                    raise ValueError(f"unknown dataset {value!r}; "
                                     f"choose from {sorted(DATASETS)}")
            grid[axis] = tuple(values)
        else:
            for value in values:
                if value not in SWEEP_VARIANTS:
                    raise ValueError(f"unknown hardware variant "
                                     f"{value!r}; choose from "
                                     f"{SWEEP_VARIANTS}")
            grid[axis] = tuple(values)
    return grid


def _sweep_unit(dataset: str, views: int, points: int, variant: str,
                seed: int) -> Dict[str, object]:
    """One sweep grid point — a picklable unit reusing the co-design
    pipeline with the named hardware variant."""
    pipeline = CoDesignPipeline(variant_config(variant))
    accel = pipeline.simulate_accelerator(dataset, num_views=views,
                                          points_per_ray=points, seed=seed)
    gpu = pipeline.simulate_gpu("rtx2080ti", dataset, num_views=views,
                                points_per_ray=points)
    return {
        "dataset": dataset,
        "num_views": views,
        "points_per_ray": points,
        "variant": variant,
        "gen_nerf_fps": accel.fps,
        "rtx2080ti_fps": gpu.fps,
        "speedup_vs_2080ti": accel.fps / max(gpu.fps, 1e-12),
        "prefetch_mb": accel.prefetch_bytes / 1e6,
        "pe_utilization": accel.pe_utilization,
        "energy_mj": accel.energy_j * 1e3,
    }


def render_sweep(rows: Sequence[Dict[str, object]]) -> str:
    table = [[r["dataset"], r["variant"], r["num_views"],
              r["points_per_ray"], r["gen_nerf_fps"], r["rtx2080ti_fps"],
              r["speedup_vs_2080ti"], r["prefetch_mb"],
              r["pe_utilization"], r["energy_mj"]] for r in rows]
    return format_table(
        ["Dataset", "Variant", "#Views", "#Points", "Gen-NeRF FPS",
         "2080Ti FPS", "Speedup", "Prefetch MB", "PE util", "Energy mJ"],
        table,
        title=f"Registry sweep — {len(table)} grid point(s) over "
              f"dataset x views x points x variant")


def run_sweep(grid: Optional[Mapping[str, Sequence]] = None,
              ctx: Optional[RunContext] = None
              ) -> Tuple[List[Dict[str, object]], str]:
    """Run a dataset x views x points x hardware-variant grid.

    Every grid point is an independent simulator run fanned out over
    :func:`repro.core.run_variants` (``ctx.workers`` / ``REPRO_WORKERS``
    / CPU count); rows come back in grid order — datasets outermost,
    variants innermost — byte-identical at any worker count.
    """
    ctx = ctx or RunContext()
    full = dict(SWEEP_DEFAULT_GRID)
    full.update({axis: tuple(values)
                 for axis, values in (grid or {}).items()})
    seed = ctx.seed if ctx.seed is not None else 0
    tasks = [(_sweep_unit, dict(dataset=dataset, views=views,
                                points=points, variant=variant, seed=seed))
             for dataset, views, points, variant in itertools.product(
                 full["dataset"], full["views"], full["points"],
                 full["variant"])]
    with exported_cache_knob(ctx.cache_dir):
        rows = run_variants(tasks, workers=ctx.workers,
                            timeout=ctx.task_timeout, retries=ctx.retries)
    return rows, render_sweep(rows)
