"""Disk-backed cache for expensive scene preparation artefacts.

Scene *generation* is cheap and crc32-deterministic, but the two
minutes-scale steps of preparing an LLFF analogue — rendering the
source views (``SceneData.prepare``) and the dense target reference
(``render_target_reference``) — are pure functions of a small recipe.
This module persists those arrays under a cache directory keyed by the
crc32 of the recipe string, so :func:`repro.core.run_variants` pool
workers and repeated pytest sessions stop rebuilding them.

Knob: ``REPRO_CACHE_DIR`` names the cache directory; unset, empty, or
one of ``0 / off / none / disabled`` turns the disk layer off (the
in-process memos in :mod:`repro.core.context` still apply).  Cache hits
are byte-identical to cold preparation — the equivalence is pinned in
``tests/core/test_scene_cache.py``.

Files are written atomically (temp file + ``os.replace``) so a crashed
or concurrent run can never leave a truncated entry; an unreadable or
corrupt entry is a miss that **self-heals** — the bad file is deleted
(with a structured ``scene_cache.corrupt_entry`` warning through
:mod:`repro.core.log`), the caller recomputes, and the atomic store
writes a good entry back, so a damaged ``REPRO_CACHE_DIR`` never
poisons runs forever.
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from typing import Optional

import numpy as np

from . import faults, log
from .reporting import atomic_write

_LOG = log.get_logger("scene_cache")

ENV_KNOB = "REPRO_CACHE_DIR"
_OFF_VALUES = {"", "0", "off", "none", "disabled"}


@contextmanager
def exported_cache_knob(cache_dir: Optional[str]):
    """Export an explicit cache directory through the env knob for the
    duration of a run, restoring the previous value afterwards.

    This is how a :class:`repro.core.context.RunContext.cache_dir` (or
    the CLI's ``--cache-dir``) reaches every consumer — the sequential
    unit path *and* ``run_variants`` pool workers, which inherit the
    environment.  ``None`` (unspecified) leaves the environment alone;
    off-values pass through and disable the cache as usual.
    """
    if cache_dir is None:
        yield
        return
    previous = os.environ.get(ENV_KNOB)
    os.environ[ENV_KNOB] = cache_dir
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_KNOB, None)
        else:
            os.environ[ENV_KNOB] = previous


def source_images_key(name: str, image_scale: float,
                      num_source_views: int, seed: int,
                      gt_points: int) -> str:
    """The disk key of one LLFF-analogue scene's rendered source views.

    Shared by the experiment-layer memos (:mod:`repro.core.context`)
    and the serving LRU (:class:`repro.core.serve.SceneStore`), so a
    daemon warm-up and a harness run at matching recipes hit the same
    entries instead of re-rendering.
    """
    return recipe_key(f"llff-src-{name}", image_scale=float(image_scale),
                      num_source_views=int(num_source_views),
                      seed=int(seed), gt_points=int(gt_points))


def recipe_key(slug: str, **fields) -> str:
    """Stable cache key: a readable slug plus the crc32 of the recipe.

    ``fields`` are serialised sorted-by-name with ``repr`` values, so
    any change to a preparation parameter changes the key.
    """
    recipe = slug + ":" + ",".join(f"{name}={fields[name]!r}"
                                   for name in sorted(fields))
    return f"{slug}-{zlib.crc32(recipe.encode('utf-8')):08x}"


class SceneCache:
    """One cache directory of ``<recipe_key>.npy`` arrays."""

    def __init__(self, directory: str):
        self.directory = str(directory)

    @staticmethod
    def from_env(explicit: Optional[str] = None) -> Optional["SceneCache"]:
        """Resolve the active cache: ``explicit`` beats the env knob;
        off-values (and an unset knob) return ``None``."""
        value = explicit if explicit is not None \
            else os.environ.get(ENV_KNOB, "")
        if value is None or str(value).strip().lower() in _OFF_VALUES:
            return None
        return SceneCache(str(value))

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.npy")

    def load(self, key: str) -> Optional[np.ndarray]:
        """The cached array, or ``None`` on a miss.

        A corrupt entry (truncated, foreign, or unreadable file — or
        one an active :class:`repro.core.faults.FaultPlan` injects as
        corrupt) is deleted on the spot with a structured warning: the
        caller recomputes and stores a good entry back, so the cache
        self-heals instead of missing silently forever.
        """
        path = self.path_for(key)
        plan = faults.active_plan()
        if plan is not None and plan.corrupts_cache(key):
            self._heal(key, path, "injected corruption")
            return None
        try:
            return np.load(path, allow_pickle=False)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, EOFError) as error:
            self._heal(key, path, str(error))
            return None

    def _heal(self, key: str, path: str, reason: str) -> None:
        """Delete one corrupt entry (best-effort) and warn once."""
        try:
            os.unlink(path)
            deleted = True
        except OSError:
            deleted = False
        log.event(_LOG, "scene_cache.corrupt_entry", key=key, path=path,
                  deleted=deleted, reason=reason)

    def store(self, key: str, array: np.ndarray) -> str:
        """Persist ``array`` under ``key`` atomically."""
        return atomic_write(
            self.path_for(key),
            lambda handle: np.save(handle, np.ascontiguousarray(array)),
            mode="wb")
