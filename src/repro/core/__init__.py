"""``repro.core`` — co-design glue and the experiment registry.

:mod:`repro.core.pipeline` runs paper-scale workloads on device models;
:mod:`repro.core.registry` holds one declarative :class:`Experiment`
per paper table/figure (prepare → units → reduce → render) driven by a
:class:`repro.core.context.RunContext`; :mod:`repro.core.experiments`
holds the picklable unit bodies plus the legacy ``run_*`` wrappers;
:mod:`repro.core.reporting` renders artefact text.  ``python -m repro``
(:mod:`repro.cli`) lists, runs, sweeps, and batch-ingests everything
registered.

Serving layer (``docs/serving.md``): :mod:`repro.core.serve` is the
long-lived render daemon behind ``python -m repro serve`` — a
virtual-clock scheduler coalescing rays across concurrent requests
into batched dispatches, byte-identical to direct renders.

Robustness layer (``docs/robustness.md``): :mod:`repro.core.faults`
injects deterministic worker crashes/hangs/corruption and owns the
shared retry policy; :mod:`repro.core.log` carries every fallback as a
structured event (``REPRO_LOG`` knob); :mod:`repro.core.batch` ingests
arbitrary job directories with per-job quarantine and resume.
"""

from .figures import (ascii_bar_chart, ascii_line_chart,
                      stacked_latency_chart)
from .log import configure as configure_logging, get_logger
from .faults import (CorruptResult, FaultPlan, FaultSpec, backoff_delay,
                     detect_retries, detect_task_timeout, injected_faults,
                     retry_call)
from .batch import (BatchSpecError, BatchSummary, JobReport, run_batch,
                    validate_spec)
from .context import (LLFF_EVAL_SCENES, RunContext, clear_scene_memos,
                      llff_references, llff_scene_data)
from .runner import (detect_workers, in_pool_worker, mark_pool_worker,
                     run_variants)
from .frame_pool import map_chunks, resolve_workers, shutdown_pool
from .scene_cache import SceneCache
from .experiments import (AblationRow, FIG9_PAIRS, Fig9Point,
                          run_coarse_budget_ablation,
                          run_fig2, run_fig9, run_fig10, run_fig11,
                          run_fig12, run_patch_candidate_ablation,
                          run_table1, run_table2, run_table3, run_table4)
from .registry import (Experiment, ExperimentResult, all_experiments,
                       experiment_names, get_experiment, run_sweep)
from .pipeline import (CoDesignPipeline, HardwareRig, dataflow_ablation,
                       hardware_rig)
from .serve import (QUALITIES, RenderRequest, RenderResponse,
                    RenderScheduler, ReplayResult, SceneStore, ServeConfig,
                    ServeError, ServiceOverloaded, detect_batch_window,
                    detect_max_batch, detect_queue_limit, replay,
                    run_daemon, synthetic_trace)
from .reporting import (format_series, format_table, ratio_note,
                        write_artifact)

__all__ = [
    "CoDesignPipeline", "HardwareRig", "hardware_rig", "dataflow_ablation",
    "format_table", "format_series", "ratio_note", "write_artifact",
    "run_table1", "run_fig2", "run_fig9", "run_table2", "run_table3",
    "run_fig10", "run_fig11", "run_table4", "run_fig12",
    "run_coarse_budget_ablation", "run_patch_candidate_ablation",
    "run_variants", "detect_workers", "in_pool_worker", "mark_pool_worker",
    "map_chunks", "resolve_workers", "shutdown_pool", "llff_scene_data",
    "llff_references", "clear_scene_memos", "LLFF_EVAL_SCENES",
    "RunContext", "SceneCache",
    "Experiment", "ExperimentResult", "get_experiment",
    "experiment_names", "all_experiments", "run_sweep",
    "Fig9Point", "AblationRow", "FIG9_PAIRS",
    "ascii_line_chart", "ascii_bar_chart", "stacked_latency_chart",
    "configure_logging", "get_logger",
    "CorruptResult", "FaultPlan", "FaultSpec", "backoff_delay",
    "detect_retries", "detect_task_timeout", "injected_faults",
    "retry_call",
    "BatchSpecError", "BatchSummary", "JobReport", "run_batch",
    "validate_spec",
    "QUALITIES", "RenderRequest", "RenderResponse", "RenderScheduler",
    "ReplayResult", "SceneStore", "ServeConfig", "ServeError",
    "ServiceOverloaded", "detect_batch_window", "detect_max_batch",
    "detect_queue_limit", "replay", "run_daemon", "synthetic_trace",
]
