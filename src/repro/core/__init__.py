"""``repro.core`` — co-design glue and the experiment registry.

:mod:`repro.core.pipeline` runs paper-scale workloads on device models;
:mod:`repro.core.experiments` regenerates every table and figure of the
paper; :mod:`repro.core.reporting` renders them as text.
"""

from .figures import (ascii_bar_chart, ascii_line_chart,
                      stacked_latency_chart)
from .experiments import (AblationRow, FIG9_PAIRS, Fig9Point,
                          clear_scene_memos, detect_workers, llff_scene_data,
                          run_coarse_budget_ablation,
                          run_fig2, run_fig9, run_fig10, run_fig11,
                          run_fig12, run_patch_candidate_ablation,
                          run_table1, run_table2, run_table3, run_table4,
                          run_variants)
from .pipeline import (CoDesignPipeline, HardwareRig, dataflow_ablation,
                       hardware_rig)
from .reporting import format_series, format_table, ratio_note

__all__ = [
    "CoDesignPipeline", "HardwareRig", "hardware_rig", "dataflow_ablation",
    "format_table", "format_series", "ratio_note",
    "run_table1", "run_fig2", "run_fig9", "run_table2", "run_table3",
    "run_fig10", "run_fig11", "run_table4", "run_fig12",
    "run_coarse_budget_ablation", "run_patch_candidate_ablation",
    "run_variants", "detect_workers", "llff_scene_data",
    "clear_scene_memos",
    "Fig9Point", "AblationRow", "FIG9_PAIRS",
    "ascii_line_chart", "ascii_bar_chart", "stacked_latency_chart",
]
