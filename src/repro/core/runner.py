"""Multi-process variant runner shared by every experiment.

The table2/table3 harnesses train several *independent* model variants
(identical schedules, per-variant RNG seeds, deterministic scene
generation), which makes them embarrassingly parallel on multi-core
hosts.  :func:`run_variants` fans the variant units out over a
``concurrent.futures`` process pool; results always come back in task
order and each unit is a pure function of its arguments, so the rows —
and therefore the committed figure/table artefacts — are byte-identical
whether the units run in one process or many.
"""

from __future__ import annotations

import concurrent.futures
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

POOL_WORKER_ENV = "REPRO_POOL_WORKER"


def in_pool_worker() -> bool:
    """True inside any repro-spawned pool worker — a ``run_variants``
    variant unit or a :mod:`repro.core.frame_pool` frame chunk."""
    return os.environ.get(POOL_WORKER_ENV, "") == "1"


def mark_pool_worker() -> None:
    """Pool initializer: flag this process as a worker so nested
    fan-outs (intra-frame sharding inside a variant unit) stay
    sequential instead of oversubscribing the host."""
    os.environ[POOL_WORKER_ENV] = "1"


def _parse_worker_count(value, source: str) -> Optional[int]:
    """Best-effort integer parse; ``None`` (with a warning) on
    non-numeric input, so a typo'd knob degrades to autodetection
    instead of crashing an hours-long harness run."""
    try:
        return int(str(value).strip())
    except (TypeError, ValueError):
        print(f"warning: ignoring non-integer {source}={value!r}",
              file=sys.stderr)
        return None


def detect_workers(num_tasks: int, workers: Optional[int] = None) -> int:
    """Resolve the worker count for :func:`run_variants`.

    Priority: explicit ``workers`` argument, then the ``REPRO_WORKERS``
    environment variable, then ``os.cpu_count()``; always clamped to
    ``[1, num_tasks]``.  On a single-core host this returns 1 and the
    runner stays in-process.  Malformed values fall back cleanly
    instead of raising: empty/whitespace values are skipped, a
    non-numeric argument or env value degrades to the next source with
    a warning, and any non-positive numeric value — argument or env —
    clamps to 1, forcing the sequential path (never a silent upgrade
    to full parallelism).
    """
    if workers is not None:
        workers = _parse_worker_count(workers, "workers")
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None and env.strip():
            workers = _parse_worker_count(env, "REPRO_WORKERS")
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(workers, max(int(num_tasks), 1)))


def run_variants(tasks: Sequence[Tuple[Callable, Dict]],
                 workers: Optional[int] = None) -> List:
    """Run ``(function, kwargs)`` units, results in task order.

    With more than one worker the units execute on a
    ``ProcessPoolExecutor`` (functions must be module-level so they
    pickle); with one worker — or if the pool cannot start, e.g. in a
    sandbox without process spawning — they run sequentially in this
    process.  Exceptions raised *by a unit* propagate unchanged in
    either mode; only pool-infrastructure failures trigger the
    sequential fallback.

    A sequential resolution (``workers=1``, a single task, or a 1-CPU
    host) never constructs a ``ProcessPoolExecutor`` at all — the
    in-process loop below runs before any pool machinery, so a
    sequential harness run pays zero spawn cost (pinned by
    ``tests/core/test_experiments.py``).  Pool workers are marked via
    :func:`mark_pool_worker`, which is what keeps a unit's *intra-frame*
    sharding (:mod:`repro.core.frame_pool`) from nesting a second pool
    under this one.
    """
    tasks = list(tasks)
    count = detect_workers(len(tasks), workers)
    if count <= 1 or len(tasks) <= 1:
        return [function(**kwargs) for function, kwargs in tasks]
    # Only pool-infrastructure failures fall back to sequential:
    # OSError during pool construction or task submission (worker
    # processes spawn lazily inside ``submit``, so a sandbox that
    # blocks process creation surfaces there, not in the constructor)
    # and BrokenProcessPool (a worker died without delivering a
    # result).  An exception *raised by a unit* is re-raised by
    # ``future.result()`` as itself — including OSError subclasses —
    # and must propagate, not trigger a silent sequential re-run of
    # every unit; ``futures`` being bound marks that submission
    # finished and any later OSError is the unit's own.
    futures = None
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=count,
                initializer=mark_pool_worker) as pool:
            futures = [pool.submit(function, **kwargs)
                       for function, kwargs in tasks]
            return [future.result() for future in futures]
    except OSError as error:
        if futures is not None:
            raise
        print(f"warning: process pool unavailable ({error}); "
              f"running variants sequentially", file=sys.stderr)
        return [function(**kwargs) for function, kwargs in tasks]
    except concurrent.futures.process.BrokenProcessPool as error:
        print(f"warning: process pool broke ({error}); "
              f"running variants sequentially", file=sys.stderr)
        return [function(**kwargs) for function, kwargs in tasks]
