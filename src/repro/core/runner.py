"""Multi-process variant runner shared by every experiment.

The table2/table3 harnesses train several *independent* model variants
(identical schedules, per-variant RNG seeds, deterministic scene
generation), which makes them embarrassingly parallel on multi-core
hosts.  :func:`run_variants` fans the variant units out over a
``concurrent.futures`` process pool; results always come back in task
order and each unit is a pure function of its arguments, so the rows —
and therefore the committed figure/table artefacts — are byte-identical
whether the units run in one process or many.

Fault tolerance (see :mod:`repro.core.faults` and
``docs/robustness.md``): like :func:`repro.core.frame_pool.map_chunks`,
every unit gets a per-task timeout (``REPRO_TASK_TIMEOUT``) and a
bounded retry budget (``REPRO_RETRIES``); a crashed worker
(``BrokenProcessPool``) re-executes only the unfinished units on a pool
rebuilt once before the run degrades to sequential, a hung unit is
retried on a fresh pool, and the final attempt for any unit always
runs in-process.  All fallbacks/retries emit structured
:mod:`repro.core.log` events.  An exception raised *by a unit*
propagates unchanged in every mode — retries are for infrastructure
faults only.
"""

from __future__ import annotations

import concurrent.futures
import logging
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import faults, log

POOL_WORKER_ENV = "REPRO_POOL_WORKER"

_LOG = log.get_logger("runner")

_UNSET = object()


def in_pool_worker() -> bool:
    """True inside any repro-spawned pool worker — a ``run_variants``
    variant unit or a :mod:`repro.core.frame_pool` frame chunk."""
    return os.environ.get(POOL_WORKER_ENV, "") == "1"


def mark_pool_worker() -> None:
    """Pool initializer: flag this process as a worker so nested
    fan-outs (intra-frame sharding inside a variant unit) stay
    sequential instead of oversubscribing the host."""
    os.environ[POOL_WORKER_ENV] = "1"


def _parse_worker_count(value, source: str) -> Optional[int]:
    """Best-effort integer parse; ``None`` (with a structured warning)
    on non-numeric input, so a typo'd knob degrades to autodetection
    instead of crashing an hours-long harness run."""
    try:
        return int(str(value).strip())
    except (TypeError, ValueError):
        log.event(_LOG, "knob.ignored", knob=source, value=value)
        return None


def detect_workers(num_tasks: int, workers: Optional[int] = None) -> int:
    """Resolve the worker count for :func:`run_variants`.

    Priority: explicit ``workers`` argument, then the ``REPRO_WORKERS``
    environment variable, then ``os.cpu_count()``; always clamped to
    ``[1, num_tasks]``.  On a single-core host this returns 1 and the
    runner stays in-process.  Malformed values fall back cleanly
    instead of raising: empty/whitespace values are skipped, a
    non-numeric argument or env value degrades to the next source with
    a warning, and any non-positive numeric value — argument or env —
    clamps to 1, forcing the sequential path (never a silent upgrade
    to full parallelism).
    """
    if workers is not None:
        workers = _parse_worker_count(workers, "workers")
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None and env.strip():
            workers = _parse_worker_count(env, "REPRO_WORKERS")
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(workers, max(int(num_tasks), 1)))


def _run_unit(function: Callable, kwargs: Dict,
              fault: Optional[faults.FaultSpec] = None,
              task_index: int = -1):
    if fault is not None:
        injected = faults.apply_worker_fault(fault, task_index)
        if injected is not None:
            return injected
    return function(**kwargs)


def run_variants(tasks: Sequence[Tuple[Callable, Dict]],
                 workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None) -> List:
    """Run ``(function, kwargs)`` units, results in task order.

    With more than one worker the units execute on a
    ``ProcessPoolExecutor`` (functions must be module-level so they
    pickle); with one worker — or if the pool cannot start, e.g. in a
    sandbox without process spawning — they run sequentially in this
    process.  A sequential resolution (``workers=1``, a single task, or
    a 1-CPU host) never constructs a ``ProcessPoolExecutor`` at all, so
    a sequential harness run pays zero spawn cost (pinned by
    ``tests/core/test_experiments.py``).  Pool workers are marked via
    :func:`mark_pool_worker`, which is what keeps a unit's *intra-frame*
    sharding (:mod:`repro.core.frame_pool`) from nesting a second pool
    under this one.

    Fault handling mirrors :func:`repro.core.frame_pool.map_chunks`:
    per-unit ``timeout`` (else ``REPRO_TASK_TIMEOUT``, else off) and
    bounded ``retries`` (else ``REPRO_RETRIES``, default 1); crashed
    workers re-execute only their units on a pool rebuilt once before
    degrading to sequential; timed-out pools are abandoned without
    joining; the final attempt runs in-process.  Exceptions raised *by
    a unit* — including OSError subclasses — propagate unchanged and
    are never retried; only pool-infrastructure failures trigger
    retries or the sequential fallback.
    """
    tasks = list(tasks)
    count = detect_workers(len(tasks), workers)
    if count <= 1 or len(tasks) <= 1:
        return [function(**kwargs) for function, kwargs in tasks]
    timeout = faults.detect_task_timeout(timeout)
    retries = faults.detect_retries(retries)
    plan = faults.active_plan()

    results: List = [_UNSET] * len(tasks)
    pending = list(range(len(tasks)))
    rebuilt = False
    degraded: Optional[str] = None
    executor: Optional[concurrent.futures.ProcessPoolExecutor] = None

    try:
        # max(retries, 1) pooled rounds, plus one bonus round when the
        # pool broke and was rebuilt — the rebuild is an infrastructure
        # event, it must not consume a task's retry budget.
        attempt = 0
        while pending and degraded is None and \
                attempt < max(retries, 1) + (1 if rebuilt else 0):
            if attempt:
                time.sleep(faults.backoff_delay(attempt - 1,
                                                salt="run_variants"))
            try:
                if executor is None:
                    executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=min(count, len(pending)),
                        initializer=mark_pool_worker)
                submitted = {}
                for index in pending:
                    fault = plan.fault_for(index, attempt,
                                           scope="run_variants") \
                        if plan else None
                    function, kwargs = tasks[index]
                    submitted[index] = executor.submit(
                        _run_unit, function, kwargs, fault, index)
            except concurrent.futures.process.BrokenProcessPool as error:
                # A worker died during spawn/submission.
                executor.shutdown(cancel_futures=True)
                executor = None
                log.event(_LOG, "run_variants.pool_broken",
                          error=str(error), attempt=attempt,
                          pending=len(pending))
                if rebuilt:
                    degraded = "pool broke twice"
                    break
                rebuilt = True
                log.event(_LOG, "run_variants.pool_rebuild",
                          level=logging.INFO, pending=len(pending))
                attempt += 1
                continue
            except OSError as error:
                # Pool infrastructure unavailable: worker processes
                # spawn lazily inside ``submit``, so a sandbox that
                # blocks process creation surfaces here, not in the
                # constructor.  A unit's own OSError surfaces from
                # future.result() below instead and propagates.
                executor = None
                degraded = f"pool unavailable: {error}"
                break

            retry: List[int] = []
            broken: Optional[BaseException] = None
            timed_out = False
            for index in pending:
                future = submitted[index]
                try:
                    value = future.result(timeout=timeout)
                except concurrent.futures.TimeoutError:
                    if future.done():
                        raise    # the unit itself raised TimeoutError
                    timed_out = True
                    log.event(_LOG, "run_variants.task_timeout",
                              task=index, attempt=attempt,
                              timeout_s=timeout)
                    retry.append(index)
                    continue
                except concurrent.futures.process.BrokenProcessPool \
                        as error:
                    broken = error
                    retry.append(index)
                    continue
                if isinstance(value, faults.CorruptResult):
                    log.event(_LOG, "run_variants.task_corrupt",
                              task=index, attempt=attempt)
                    retry.append(index)
                    continue
                results[index] = value
            pending = retry

            if broken is not None:
                executor.shutdown(cancel_futures=True)   # workers dead
                executor = None
                log.event(_LOG, "run_variants.pool_broken",
                          error=str(broken), attempt=attempt,
                          pending=len(pending))
                if rebuilt:
                    degraded = "pool broke twice"
                else:
                    rebuilt = True
                    log.event(_LOG, "run_variants.pool_rebuild",
                              level=logging.INFO, pending=len(pending))
            elif timed_out:
                # The pool still holds a hung worker: abandon it
                # without joining; a fresh pool spawns next attempt.
                executor.shutdown(wait=False, cancel_futures=True)
                executor = None
            attempt += 1
    finally:
        if executor is not None:
            executor.shutdown(cancel_futures=True)

    if degraded is not None:
        log.event(_LOG, "run_variants.degraded_sequential",
                  reason=degraded, pending=len(pending))
    if pending:
        for index in pending:
            if degraded is None:
                log.event(_LOG, "run_variants.task_inprocess",
                          level=logging.INFO, task=index)
            function, kwargs = tasks[index]
            results[index] = function(**kwargs)
    return results
