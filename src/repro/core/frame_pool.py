"""Persistent intra-frame worker pool with per-worker payload state.

:func:`repro.core.run_variants` parallelises *between* experiment
variants; this module parallelises *within* one frame.  The renderer's
chunk loops (:mod:`repro.models.renderer`) and the accelerator frame
simulation (:meth:`repro.hardware.GenNerfAccelerator.simulate_frame`)
both decompose a frame into independent work units whose boundaries are
computed identically to the sequential path, so fanning the units over
a process pool and stitching results in task order reproduces the
sequential output **byte for byte** — the same discipline that keeps
``run_variants`` artefacts stable.

Design points (the worker-pool chunked-fetch idiom, adapted to heavy
per-task state):

* **Per-worker payload, initialised once.**  ``map_chunks(fn, payload,
  tasks)`` ships ``payload`` (model + encoded feature maps, or the
  accelerator simulator) to each worker through the pool *initializer*,
  not with every task — chunks carry only their small descriptors
  (slice bounds, per-chunk uniforms, a shard of plan arrays).
* **Pool persistence.**  The executor survives across calls keyed by
  (worker count, payload identity): repeated renders of the same
  scene/model — an eval ladder, a bench loop, the future ``serve``
  daemon — reuse the warm workers instead of re-spawning and
  re-shipping state.  A payload or width change retires the old pool.
* **Nested-pool guard.**  Every repro pool worker (here *and* in
  ``run_variants``) marks itself via the ``REPRO_POOL_WORKER`` env
  flag; :func:`resolve_workers` returns 1 inside any such worker, so a
  variant already fanned out by ``run_variants`` never oversubscribes
  the host with a second layer of processes.

Fault tolerance (see :mod:`repro.core.faults` and
``docs/robustness.md``): every task gets a per-task timeout
(``REPRO_TASK_TIMEOUT``) and a bounded retry budget
(``REPRO_RETRIES``).  A crashed or hung worker re-executes *only its
chunk* — completed chunks keep their results — with pooled retries
first and a final in-process attempt as the backstop, so the output is
byte-identical to the sequential path no matter which workers died.
``BrokenProcessPool`` mid-run rebuilds the pool once before degrading
to fully sequential execution; a timed-out pool (which still holds a
hung worker) is retired without joining and respawned on the next
attempt.  Every retry, rebuild, and degradation emits a structured
event through :mod:`repro.core.log`; an exception raised *by a chunk
function* propagates unchanged in every mode — retries are for
infrastructure faults, not for deterministic chunk errors.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import logging
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import faults, log
from .runner import (POOL_WORKER_ENV, detect_workers, in_pool_worker,
                     mark_pool_worker)

_LOG = log.get_logger("frame_pool")

# Parent-side singleton: (executor, worker count, payload).  Holding the
# payload tuple keeps strong references to its elements, so the id-based
# identity check below can never alias a garbage-collected object.
_POOL: Optional[Tuple[concurrent.futures.ProcessPoolExecutor, int, tuple]] \
    = None

# Worker-side state, set once by the pool initializer.
_WORKER_PAYLOAD = None

_UNSET = object()


def _init_worker(payload: tuple) -> None:
    global _WORKER_PAYLOAD
    mark_pool_worker()
    _WORKER_PAYLOAD = payload


def _run_task(function: Callable, args: tuple,
              fault: Optional[faults.FaultSpec] = None,
              task_index: int = -1):
    if fault is not None:
        injected = faults.apply_worker_fault(fault, task_index)
        if injected is not None:
            return injected
    return function(_WORKER_PAYLOAD, *args)


def resolve_workers(num_tasks: int, workers: Optional[int] = None) -> int:
    """Shard width for an intra-frame fan-out.

    ``workers=None`` autodetects (``REPRO_WORKERS`` env, then CPU
    count) exactly like :func:`repro.core.detect_workers`; explicit
    values clamp to ``[1, num_tasks]``.  Inside a pool worker — a
    variant unit already running under ``run_variants``, or a frame
    chunk itself — the answer is always 1: only the outermost layer of
    parallelism may own the host's cores.
    """
    if in_pool_worker():
        return 1
    return detect_workers(num_tasks, workers)


def _payload_matches(held: tuple, payload: tuple) -> bool:
    return len(held) == len(payload) and \
        all(a is b for a, b in zip(held, payload))


def get_pool(payload: tuple, workers: int
             ) -> concurrent.futures.ProcessPoolExecutor:
    """The persistent executor for ``payload`` at ``workers`` width.

    Reused while every payload element is *the same object* as the
    previous call's (a model or accelerator re-rendering frames keeps
    its pool warm); any change shuts the old pool down and spawns a
    fresh one whose workers are initialised with the new payload.
    """
    global _POOL
    if _POOL is not None:
        executor, count, held = _POOL
        if count == workers and _payload_matches(held, payload):
            return executor
        shutdown_pool()
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(payload,))
    _POOL = (executor, workers, payload)
    return executor


def shutdown_pool() -> None:
    """Retire the persistent pool (idempotent; registered at exit)."""
    global _POOL
    if _POOL is not None:
        executor, _, _ = _POOL
        _POOL = None
        executor.shutdown(cancel_futures=True)


def _retire_pool_nowait() -> None:
    """Retire a pool that may hold a *hung* worker: drop it without
    joining (a normal shutdown would block on the wedged process; the
    abandoned worker exits on its own once its sleep/compute ends)."""
    global _POOL
    if _POOL is not None:
        executor, _, _ = _POOL
        _POOL = None
        executor.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pool)


def _is_corrupt(value, validate: Optional[Callable], index: int) -> bool:
    """A worker return that must be retried: the injected corrupt-result
    marker, or a caller-supplied validator rejecting it."""
    if isinstance(value, faults.CorruptResult):
        return True
    return validate is not None and not validate(value, index)


def map_chunks(function: Callable, payload: tuple,
               tasks: Sequence[tuple],
               workers: Optional[int] = None,
               timeout: Optional[float] = None,
               retries: Optional[int] = None,
               validate: Optional[Callable] = None) -> List:
    """Run ``function(payload, *task)`` for every task, results in
    task order.

    With a resolved width of 1 (or a single task) the calls run in this
    process against ``payload`` directly — the sequential path shares
    the exact code the workers execute, and is also the final-attempt
    backstop for every fault below.

    Fault handling (per task; completed tasks never re-execute):

    * a worker **crash** (``BrokenProcessPool``) re-submits only the
      unfinished tasks to a pool rebuilt once; a second break degrades
      the remaining tasks to sequential in-process execution;
    * a **hung** task (no result within ``timeout`` seconds — argument,
      else ``REPRO_TASK_TIMEOUT``, else off) is retried on a fresh
      pool, the poisoned one retired without joining;
    * a **corrupt** result (``validate(value, index)`` false, or an
      injected :class:`repro.core.faults.CorruptResult`) is retried
      like a crash;
    * the retry budget (``retries`` argument, else ``REPRO_RETRIES``,
      default 1) bounds pooled attempts at ``max(retries, 1)``; the
      **final attempt** for any still-unfinished task always runs
      in-process — it cannot crash or hang, so an infrastructure fault
      never aborts the frame;
    * an exception raised *by the chunk function* propagates unchanged
      in either mode — never retried, never swallowed.

    Every fallback/retry emits a structured :mod:`repro.core.log`
    event; full-degradation events fire exactly once per degradation.
    """
    tasks = list(tasks)
    count = resolve_workers(len(tasks), workers)
    if count <= 1 or len(tasks) <= 1:
        return [function(payload, *args) for args in tasks]
    timeout = faults.detect_task_timeout(timeout)
    retries = faults.detect_retries(retries)
    plan = faults.active_plan()

    results: List = [_UNSET] * len(tasks)
    pending = list(range(len(tasks)))
    rebuilt = False
    degraded: Optional[str] = None

    # max(retries, 1) pooled rounds, plus one bonus round when the pool
    # broke and was rebuilt — the rebuild is an infrastructure event,
    # it must not consume a task's retry budget.
    attempt = 0
    while pending and degraded is None and \
            attempt < max(retries, 1) + (1 if rebuilt else 0):
        if attempt:
            time.sleep(faults.backoff_delay(attempt - 1, salt="frame_pool"))
        try:
            executor = get_pool(payload, count)
            submitted: Dict[int, concurrent.futures.Future] = {}
            for index in pending:
                fault = plan.fault_for(index, attempt, scope="frame_pool") \
                    if plan else None
                submitted[index] = executor.submit(
                    _run_task, function, tasks[index], fault, index)
        except concurrent.futures.process.BrokenProcessPool as error:
            # A worker died during spawn/submission.
            shutdown_pool()
            log.event(_LOG, "frame_pool.pool_broken", error=str(error),
                      attempt=attempt, pending=len(pending))
            if rebuilt:
                degraded = "pool broke twice"
                break
            rebuilt = True
            log.event(_LOG, "frame_pool.pool_rebuild",
                      level=logging.INFO, pending=len(pending))
            attempt += 1
            continue
        except OSError as error:
            # Pool infrastructure unavailable (spawn/submit failed,
            # e.g. a sandbox without process creation).  A chunk's own
            # OSError surfaces from future.result() below instead.
            shutdown_pool()
            degraded = f"pool unavailable: {error}"
            break

        retry: List[int] = []
        broken: Optional[BaseException] = None
        timed_out = False
        for index in pending:
            future = submitted[index]
            try:
                value = future.result(timeout=timeout)
            except concurrent.futures.TimeoutError:
                if future.done():
                    raise        # the chunk itself raised TimeoutError
                timed_out = True
                log.event(_LOG, "frame_pool.task_timeout", task=index,
                          attempt=attempt, timeout_s=timeout)
                retry.append(index)
                continue
            except concurrent.futures.process.BrokenProcessPool as error:
                broken = error
                retry.append(index)
                continue
            if _is_corrupt(value, validate, index):
                log.event(_LOG, "frame_pool.task_corrupt", task=index,
                          attempt=attempt)
                retry.append(index)
                continue
            results[index] = value
        pending = retry

        if broken is not None:
            shutdown_pool()      # workers are dead; the join is instant
            log.event(_LOG, "frame_pool.pool_broken", error=str(broken),
                      attempt=attempt, pending=len(pending))
            if rebuilt:
                degraded = "pool broke twice"
            else:
                rebuilt = True
                log.event(_LOG, "frame_pool.pool_rebuild",
                          level=logging.INFO, pending=len(pending))
        elif timed_out:
            # The pool still holds the hung worker: retire it without
            # joining; the next attempt (or the next call) respawns.
            _retire_pool_nowait()
        attempt += 1

    if degraded is not None:
        log.event(_LOG, "frame_pool.degraded_sequential", reason=degraded,
                  pending=len(pending))
    if pending:
        for index in pending:
            if degraded is None:
                log.event(_LOG, "frame_pool.task_inprocess",
                          level=logging.INFO, task=index)
            results[index] = function(payload, *tasks[index])
    return results
