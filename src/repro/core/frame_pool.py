"""Persistent intra-frame worker pool with per-worker payload state.

:func:`repro.core.run_variants` parallelises *between* experiment
variants; this module parallelises *within* one frame.  The renderer's
chunk loops (:mod:`repro.models.renderer`) and the accelerator frame
simulation (:meth:`repro.hardware.GenNerfAccelerator.simulate_frame`)
both decompose a frame into independent work units whose boundaries are
computed identically to the sequential path, so fanning the units over
a process pool and stitching results in task order reproduces the
sequential output **byte for byte** — the same discipline that keeps
``run_variants`` artefacts stable.

Design points (the worker-pool chunked-fetch idiom, adapted to heavy
per-task state):

* **Per-worker payload, initialised once.**  ``map_chunks(fn, payload,
  tasks)`` ships ``payload`` (model + encoded feature maps, or the
  accelerator simulator) to each worker through the pool *initializer*,
  not with every task — chunks carry only their small descriptors
  (slice bounds, per-chunk uniforms, a shard of plan arrays).
* **Pool persistence.**  The executor survives across calls keyed by
  (worker count, payload identity): repeated renders of the same
  scene/model — an eval ladder, a bench loop, the future ``serve``
  daemon — reuse the warm workers instead of re-spawning and
  re-shipping state.  A payload or width change retires the old pool.
* **Nested-pool guard.**  Every repro pool worker (here *and* in
  ``run_variants``) marks itself via the ``REPRO_POOL_WORKER`` env
  flag; :func:`resolve_workers` returns 1 inside any such worker, so a
  variant already fanned out by ``run_variants`` never oversubscribes
  the host with a second layer of processes.
* **Sequential fallback.**  One worker, a single task, or a pool
  infrastructure failure (``OSError`` during spawn/submit,
  ``BrokenProcessPool``) all run the chunk functions in-process;
  exceptions raised *by a chunk function* propagate unchanged.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import sys
from typing import Callable, List, Optional, Sequence, Tuple

from .runner import (POOL_WORKER_ENV, detect_workers, in_pool_worker,
                     mark_pool_worker)

# Parent-side singleton: (executor, worker count, payload).  Holding the
# payload tuple keeps strong references to its elements, so the id-based
# identity check below can never alias a garbage-collected object.
_POOL: Optional[Tuple[concurrent.futures.ProcessPoolExecutor, int, tuple]] \
    = None

# Worker-side state, set once by the pool initializer.
_WORKER_PAYLOAD = None


def _init_worker(payload: tuple) -> None:
    global _WORKER_PAYLOAD
    mark_pool_worker()
    _WORKER_PAYLOAD = payload


def _run_task(function: Callable, args: tuple):
    return function(_WORKER_PAYLOAD, *args)


def resolve_workers(num_tasks: int, workers: Optional[int] = None) -> int:
    """Shard width for an intra-frame fan-out.

    ``workers=None`` autodetects (``REPRO_WORKERS`` env, then CPU
    count) exactly like :func:`repro.core.detect_workers`; explicit
    values clamp to ``[1, num_tasks]``.  Inside a pool worker — a
    variant unit already running under ``run_variants``, or a frame
    chunk itself — the answer is always 1: only the outermost layer of
    parallelism may own the host's cores.
    """
    if in_pool_worker():
        return 1
    return detect_workers(num_tasks, workers)


def _payload_matches(held: tuple, payload: tuple) -> bool:
    return len(held) == len(payload) and \
        all(a is b for a, b in zip(held, payload))


def get_pool(payload: tuple, workers: int
             ) -> concurrent.futures.ProcessPoolExecutor:
    """The persistent executor for ``payload`` at ``workers`` width.

    Reused while every payload element is *the same object* as the
    previous call's (a model or accelerator re-rendering frames keeps
    its pool warm); any change shuts the old pool down and spawns a
    fresh one whose workers are initialised with the new payload.
    """
    global _POOL
    if _POOL is not None:
        executor, count, held = _POOL
        if count == workers and _payload_matches(held, payload):
            return executor
        shutdown_pool()
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(payload,))
    _POOL = (executor, workers, payload)
    return executor


def shutdown_pool() -> None:
    """Retire the persistent pool (idempotent; registered at exit)."""
    global _POOL
    if _POOL is not None:
        executor, _, _ = _POOL
        _POOL = None
        executor.shutdown(cancel_futures=True)


atexit.register(shutdown_pool)


def map_chunks(function: Callable, payload: tuple,
               tasks: Sequence[tuple],
               workers: Optional[int] = None) -> List:
    """Run ``function(payload, *task)`` for every task, results in
    task order.

    With a resolved width of 1 (or a single task) the calls run in this
    process against ``payload`` directly — the sequential path shares
    the exact code the workers execute.  Pool-infrastructure failures
    (``OSError`` while spawning/submitting, ``BrokenProcessPool``)
    fall back to that sequential path with a warning; an exception
    raised *by the chunk function* propagates unchanged in either mode.
    """
    tasks = list(tasks)
    count = resolve_workers(len(tasks), workers)
    if count <= 1 or len(tasks) <= 1:
        return [function(payload, *args) for args in tasks]
    futures = None
    try:
        executor = get_pool(payload, count)
        futures = [executor.submit(_run_task, function, args)
                   for args in tasks]
        return [future.result() for future in futures]
    except concurrent.futures.process.BrokenProcessPool as error:
        shutdown_pool()
        print(f"warning: frame pool broke ({error}); "
              f"rendering chunks sequentially", file=sys.stderr)
        return [function(payload, *args) for args in tasks]
    except OSError as error:
        # Mirrors run_variants: an OSError after submission finished is
        # the chunk function's own and must propagate.
        if futures is not None:
            raise
        shutdown_pool()
        print(f"warning: frame pool unavailable ({error}); "
              f"rendering chunks sequentially", file=sys.stderr)
        return [function(payload, *args) for args in tasks]
