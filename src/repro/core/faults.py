"""Deterministic fault injection and the shared retry policy.

The execution layer (:mod:`repro.core.frame_pool`,
:func:`repro.core.run_variants`, :mod:`repro.core.batch`, and the
scene cache) must survive crashed workers, hung workers, corrupt
results, corrupt cache entries, and interrupted ingestion runs — with
byte-identical outputs on the retry path.  Proving that requires
*reproducible* failures: this module provides a declarative
:class:`FaultPlan` that injects exactly the faults a test asks for,
keyed by task index and attempt number, so every run of a
fault-injection suite sees the same failure sequence.

Fault kinds (all injected **inside pool workers only** — the
in-process/sequential paths never inject, which is what makes them the
trustworthy final-attempt backstop):

* ``crash``   — the worker process exits hard (``os._exit``), so the
  parent sees ``BrokenProcessPool``, exactly like a real segfault or
  OOM kill;
* ``hang``    — the task sleeps past its timeout before computing,
  modelling a wedged or pathologically slow worker;
* ``corrupt`` — the task returns a :class:`CorruptResult` marker in
  place of its real output, standing in for a checksum-failing return.

Plans additionally cover the non-pool layers: ``cache_keys`` makes
matching scene-cache entries read as corrupt (exercising the
self-heal path) and ``jobs`` injects per-job faults into the batch
ingestion loop (``"interrupt"`` kills the run mid-flight for resume
tests, ``"error"`` makes one job raise so quarantine is exercised).

A plan is installed parent-side with :func:`injected_faults`; the
execution layers ship each task's :class:`FaultSpec` into the worker
along with the task itself (workers may be spawned processes — they
cannot see parent globals).

The retry policy half is plain shared machinery, active whether or not
a plan is installed: :func:`retry_call` (bounded attempts, exponential
backoff with deterministic jitter, retry on declared exception types),
:func:`backoff_delay` (the jitter schedule itself), and the
``REPRO_TASK_TIMEOUT`` / ``REPRO_RETRIES`` knobs with the same lenient
parsing as ``REPRO_WORKERS`` (malformed values warn and fall back,
never crash an hours-long run).
"""

from __future__ import annotations

import logging
import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Tuple

from . import log

TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
RETRIES_ENV = "REPRO_RETRIES"

#: Default bounded-retry budget for pool tasks: one pooled retry before
#: the in-process final attempt.
DEFAULT_RETRIES = 1

#: Default base for the exponential-backoff schedule, in seconds.  Kept
#: small: pool retries are for *local* worker failures, not remote
#: services — the point of the backoff is to avoid hammering a host
#: that is thrashing, not to wait out a network partition.
DEFAULT_BACKOFF_S = 0.05

_CRASH_EXIT_CODE = 86          # distinctive, greppable in CI logs

_LOG = log.get_logger("faults")


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class CorruptResult:
    """Marker a fault-injected worker returns in place of its real
    output — the stand-in for a checksum-failing result.  The execution
    layer treats any ``CorruptResult`` (or a ``validate`` hook saying
    no) as a retryable worker fault, never as data."""

    def __init__(self, task_index: int):
        self.task_index = int(task_index)

    def __repr__(self) -> str:
        return f"CorruptResult(task_index={self.task_index})"


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` on the listed ``attempts``.

    ``attempts=(0,)`` (the default) is the common "fail once, succeed
    on retry" shape; a longer tuple keeps failing to exercise
    degradation paths.  ``hang_s`` is how long a ``hang`` sleeps before
    letting the task proceed (the parent's timeout should be shorter).
    """

    kind: str                            # "crash" | "hang" | "corrupt"
    attempts: Tuple[int, ...] = (0,)
    hang_s: float = 2.0

    def __post_init__(self):
        if self.kind not in ("crash", "hang", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule for one test or drill.

    * ``tasks`` — task index -> :class:`FaultSpec`, injected by the
      pool layers (``scope`` restricts which layer: ``"frame_pool"``,
      ``"run_variants"``, or ``""`` for any);
    * ``cache_keys`` — substrings of scene-cache keys whose entries
      read as corrupt;
    * ``jobs`` — batch job stem -> ``"interrupt"`` (the ingestion run
      dies mid-flight, as if killed) or ``"error"`` (the job raises and
      must be quarantined);
    * ``requests`` — serve-layer request id -> ``"error"`` (the request
      fails at dispatch), ``"corrupt"`` (its result reads as corrupt
      and is quarantined at completion), or ``"hang"`` (its chunks are
      withheld until the scheduler's request deadline) — consumed by
      :mod:`repro.core.serve` to prove poisoned requests are
      quarantined while their batch-mates complete byte-identically.
    """

    tasks: Mapping[int, FaultSpec] = field(default_factory=dict)
    scope: str = ""
    cache_keys: Tuple[str, ...] = ()
    jobs: Mapping[str, str] = field(default_factory=dict)
    requests: Mapping[str, str] = field(default_factory=dict)

    def fault_for(self, index: int, attempt: int,
                  scope: str = "") -> Optional[FaultSpec]:
        """The fault to inject for task ``index`` on ``attempt`` at
        call site ``scope``, or ``None``."""
        if self.scope and scope and scope != self.scope:
            return None
        spec = self.tasks.get(int(index))
        if spec is not None and int(attempt) in spec.attempts:
            return spec
        return None

    def corrupts_cache(self, key: str) -> bool:
        return any(marker in key for marker in self.cache_keys)

    def job_fault(self, stem: str) -> Optional[str]:
        return self.jobs.get(stem)

    def request_fault(self, request_id: str) -> Optional[str]:
        return self.requests.get(request_id)


# Parent-side active plan.  Pool workers never read this global (they
# may be fresh spawned processes); the execution layers consult it at
# submit time and ship the matching FaultSpec with the task.
_ACTIVE: Optional[FaultPlan] = None


@contextmanager
def injected_faults(plan: FaultPlan):
    """Install ``plan`` as the active fault plan for the duration of
    the block (test scaffolding; production runs never install one)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def apply_worker_fault(spec: FaultSpec, task_index: int):
    """Execute one injected fault inside a pool worker.

    ``crash`` never returns (hard process exit -> the parent's pool
    breaks); ``hang`` sleeps ``hang_s`` and returns ``None`` so the
    task then proceeds normally — a slow worker, whose late result the
    timed-out parent discards; ``corrupt`` returns the
    :class:`CorruptResult` that replaces the task's output.
    """
    if spec.kind == "crash":
        os._exit(_CRASH_EXIT_CODE)
    if spec.kind == "hang":
        time.sleep(spec.hang_s)
        return None
    return CorruptResult(task_index)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def backoff_delay(attempt: int, base: float = DEFAULT_BACKOFF_S,
                  seed: int = 0, salt: str = "") -> float:
    """Exponential backoff with deterministic jitter.

    ``base * 2**attempt`` plus a jitter in ``[0, base)`` derived from
    ``crc32(seed:salt:attempt)`` — reproducible for a given run seed
    (no wall-clock or global RNG involved), but de-synchronised across
    differently salted callers so parallel retriers don't stampede in
    lockstep.
    """
    token = f"{int(seed)}:{salt}:{int(attempt)}".encode("utf-8")
    jitter = base * (zlib.crc32(token) % 1000) / 1000.0
    return base * (2.0 ** max(int(attempt), 0)) + jitter


def retry_call(function: Callable, *args,
               retries: Optional[int] = None,
               retry_on: Tuple[type, ...] = (Exception,),
               base_delay: float = DEFAULT_BACKOFF_S,
               seed: int = 0, salt: str = "",
               on_retry: Optional[Callable] = None,
               sleep: Callable[[float], None] = time.sleep,
               **kwargs):
    """Call ``function(*args, **kwargs)`` with bounded retries.

    Retries only on ``retry_on`` exception types (anything else
    propagates immediately), sleeping :func:`backoff_delay` between
    attempts; after ``retries`` retries the final failure propagates.
    ``on_retry(attempt, error)`` observes each retry (logging hooks).
    Per-task *timeouts* are enforced where a task can actually be
    abandoned — at the pool-future layer in ``map_chunks`` /
    ``run_variants``, whose ``TimeoutError`` is just another retryable
    error here; an in-process Python call cannot be interrupted.
    """
    retries = detect_retries(retries)
    for attempt in range(retries + 1):
        try:
            return function(*args, **kwargs)
        except retry_on as error:
            if attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(backoff_delay(attempt, base=base_delay, seed=seed,
                                salt=salt))


# ----------------------------------------------------------------------
# Env knobs (lenient, like REPRO_WORKERS)
# ----------------------------------------------------------------------
def _parse_number(value, source: str, cast):
    """Best-effort numeric parse; ``None`` (with a structured warning)
    on malformed input, so a typo'd knob degrades to the default
    instead of crashing a long run."""
    try:
        return cast(str(value).strip())
    except (TypeError, ValueError):
        log.event(_LOG, "knob.ignored", level=logging.WARNING,
                  knob=source, value=value)
        return None


def detect_task_timeout(timeout=None) -> Optional[float]:
    """Resolve the per-task timeout in seconds for the pool layers.

    Priority: explicit argument, then the ``REPRO_TASK_TIMEOUT`` env
    knob, then ``None`` (timeouts off — the historical behaviour).
    Empty/whitespace env values are skipped; malformed values warn and
    fall through; any non-positive value disables timeouts explicitly.
    """
    if timeout is not None:
        timeout = _parse_number(timeout, "timeout", float)
    if timeout is None:
        env = os.environ.get(TIMEOUT_ENV)
        if env is not None and env.strip():
            timeout = _parse_number(env, TIMEOUT_ENV, float)
    if timeout is None:
        return None
    return timeout if timeout > 0 else None


def detect_retries(retries=None) -> int:
    """Resolve the bounded-retry budget for the pool layers.

    Priority: explicit argument, then the ``REPRO_RETRIES`` env knob,
    then :data:`DEFAULT_RETRIES`.  Malformed values warn and fall
    through; negative values clamp to 0 (no retries, straight to the
    final in-process attempt on failure) rather than raising.
    """
    if retries is not None:
        retries = _parse_number(retries, "retries", int)
    if retries is None:
        env = os.environ.get(RETRIES_ENV)
        if env is not None and env.strip():
            retries = _parse_number(env, RETRIES_ENV, int)
    if retries is None:
        retries = DEFAULT_RETRIES
    return max(int(retries), 0)
