"""Experiment registry: one runnable per paper table/figure.

Each ``run_*`` function regenerates the data behind one table or figure
of the paper (see DESIGN.md's experiment index) and returns plain
Python structures; the ``benchmarks/`` suite calls these and formats
them with :mod:`repro.core.reporting`.  Hardware experiments execute at
the paper's full resolutions (the simulator does not march rays);
algorithm experiments take scale knobs so the numpy training stays
tractable, with defaults chosen to finish in minutes.
"""

from __future__ import annotations

import concurrent.futures
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import models as M
from ..hardware.area_power import PAPER_TABLE1, full_chip_budget
from ..hardware.energy import typical_chip_power_w
from ..hardware.gpu_model import GpuModel, JETSON_TX2, RTX_2080TI
from ..hardware.icarus import TABLE4_PAPER_ROWS
from ..models.oracle import OracleStrategy, oracle_render_image
from ..models.workload import (RenderWorkload, profiling_workload,
                               table2_workload, typical_workload)
from ..scenes.datasets import DATASETS, Scene, llff_eval_scenes, make_scene
from .pipeline import CoDesignPipeline, dataflow_ablation

PROFILE_DATASETS = ("deepvoxels", "nerf_synthetic", "llff")

# Fig. 9's coarse/focused pairs (paper Sec. 5.2).
FIG9_PAIRS = ((8, 8), (8, 16), (16, 32), (32, 64))
FIG9_UNIFORM_POINTS = (16, 24, 48, 96, 192)


# ----------------------------------------------------------------------
# Table 1 — area / power
# ----------------------------------------------------------------------
def run_table1() -> List[Tuple[str, float, float, float, float]]:
    """Rows: (module, area, paper area, power, paper power)."""
    budget = full_chip_budget()
    rows = []
    for key in ("scheduler", "ppu", "engine", "prefetch", "total"):
        paper_area, paper_power = PAPER_TABLE1[key]
        module = budget[key]
        rows.append((module.name, module.area_mm2, paper_area,
                     module.power_mw, paper_power))
    return rows


# ----------------------------------------------------------------------
# Fig. 2 — GPU latency breakdown of the profiling workload
# ----------------------------------------------------------------------
def run_fig2() -> Dict[str, Dict[str, Dict[str, float]]]:
    """{device: {dataset: {phase: seconds, 'total': s, 'fps': f}}}.

    Profiling setup of Sec. 2.3: 10 source views, 196 points per ray,
    the vanilla (ray transformer) model.
    """
    devices = {"rtx2080ti": GpuModel(RTX_2080TI), "tx2": GpuModel(JETSON_TX2)}
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for device_name, model in devices.items():
        per_dataset = {}
        for dataset in PROFILE_DATASETS:
            spec = DATASETS[dataset]
            workload = profiling_workload(spec.height, spec.width)
            sim = model.simulate_frame(workload)
            phases = {
                "acquire_features": sim.phase_seconds["gather"],
                "mlp": sim.phase_seconds["mlp"],
                "ray_transformer": sim.phase_seconds["ray_module"],
                "others": (sim.phase_seconds["sampling"]
                           + sim.phase_seconds["others"]),
            }
            phases["total"] = sim.total_time_s
            phases["fps"] = sim.fps
            phases["attention_dnn_fraction"] = sim.dnn_attention_fraction()
            per_dataset[dataset] = phases
        results[device_name] = per_dataset
    return results


# ----------------------------------------------------------------------
# Shared scene preparation (memoised per process)
# ----------------------------------------------------------------------
# Scene generation is crc32-deterministic, the source-view renders of
# ``SceneData.prepare`` depend only on (scene, gt_points), and the
# dense target reference only on (scene, step) — so one process-wide
# memo serves every harness: Table 2 and Table 3 at matching view
# counts share the same minutes-scale ground-truth renders instead of
# re-rendering them per runner.  The shared ``SceneData`` objects also
# carry the scene-level caches of the training fast path
# (``gt_cache`` / ``conv_cache``), which is what lets identically
# scheduled variant ladders reuse supervision across models.

_SCENE_DATA_MEMO: Dict[tuple, "M.SceneData"] = {}
_REFERENCE_MEMO: Dict[tuple, np.ndarray] = {}

LLFF_EVAL_SCENES = ("fern", "fortress", "horns", "trex")


def clear_scene_memos() -> None:
    """Drop the process-wide prepared-scene and reference memos.

    Long-lived processes that sweep many configurations (each pinning
    its rendered ``SceneData`` — including the per-scene GT and
    feature caches — forever) can call this between sweeps to release
    the memory; the next harness run simply re-renders."""
    _SCENE_DATA_MEMO.clear()
    _REFERENCE_MEMO.clear()


def llff_scene_data(image_scale: float, num_source_views: int = 10,
                    seed: int = 1, gt_points: int = 128,
                    names: Sequence[str] = LLFF_EVAL_SCENES
                    ) -> Dict[str, "M.SceneData"]:
    """Prepared :class:`repro.models.SceneData` for LLFF analogues,
    memoised per process **per scene**, so a harness that asks for a
    subset (tiny test configs) only ever pays for that subset."""
    base = (float(image_scale), int(num_source_views), int(seed),
            int(gt_points))
    prepared: Dict[str, "M.SceneData"] = {}
    missing = [name for name in names
               if (base + (name,)) not in _SCENE_DATA_MEMO]
    if missing:
        eval_scenes = llff_eval_scenes(image_scale, num_source_views,
                                       seed=seed)
        for name in missing:
            _SCENE_DATA_MEMO[base + (name,)] = M.SceneData.prepare(
                eval_scenes[name], gt_points=gt_points)
    for name in names:
        prepared[name] = _SCENE_DATA_MEMO[base + (name,)]
    return prepared


def _llff_references(scene_data: Dict[str, "M.SceneData"], key: tuple,
                     eval_step: int) -> Dict[str, np.ndarray]:
    """Dense target references for a prepared scene dict, memoised
    per (configuration, scene, step)."""
    references: Dict[str, np.ndarray] = {}
    for name, data in scene_data.items():
        memo_key = (key, name, int(eval_step))
        cached = _REFERENCE_MEMO.get(memo_key)
        if cached is None:
            cached = M.render_target_reference(data.scene, num_points=192,
                                               step=eval_step)
            _REFERENCE_MEMO[memo_key] = cached
        references[name] = cached
    return references


# ----------------------------------------------------------------------
# Fig. 9 — PSNR vs sampled points / MFLOPs (oracle-field evaluation)
# ----------------------------------------------------------------------
@dataclass
class Fig9Point:
    label: str
    avg_points: float
    mflops_per_pixel: float
    psnr: float


def _fig9_flops(strategy: OracleStrategy, num_views: int = 10) -> float:
    """MFLOPs/pixel of the paper-scale model under this sampling."""
    if strategy.kind == "coarse_focus":
        workload = RenderWorkload(height=1, width=1, num_views=num_views,
                                  points_per_ray=strategy.points,
                                  ray_module="mixer",
                                  coarse_points=strategy.coarse_points,
                                  n_max=max(64, strategy.points
                                            + strategy.coarse_points))
    else:
        total = strategy.points + strategy.coarse_points
        workload = RenderWorkload(height=1, width=1, num_views=num_views,
                                  points_per_ray=total,
                                  ray_module="transformer")
    return workload.flops_per_pixel() / 1e6


def _fig9_unit(dataset: str, seed: int, step: int, reference_points: int,
               pairs: Sequence[Tuple[int, int]],
               uniform_points: Sequence[int], image_scale: float
               ) -> Dict[str, List[Fig9Point]]:
    """One dataset's Fig. 9 oracle sweep — a process-shippable unit.

    Module-level and argument-pure (scene generation is deterministic),
    so :func:`run_variants` can fan the per-dataset sweeps out; curves
    are identical wherever the unit runs.
    """
    scene = make_scene(dataset, seed=seed, image_scale=image_scale)
    reference = M.render_target_reference(scene, reference_points, step)
    curves: Dict[str, List[Fig9Point]] = {"gen_nerf": [], "ibrnet": []}

    background = scene.spec.white_background
    for coarse, focused in pairs:
        strategy = OracleStrategy(kind="coarse_focus",
                                  coarse_points=coarse, points=focused,
                                  white_background=background)
        image, stats = oracle_render_image(
            scene.field, scene.target_camera, scene.near, scene.far,
            strategy, step=step)
        curves["gen_nerf"].append(Fig9Point(
            label=strategy.label, avg_points=stats["avg_points"],
            mflops_per_pixel=_fig9_flops(strategy),
            psnr=M.psnr(image, reference)))

    for total in uniform_points:
        coarse = max(4, total // 3)
        strategy = OracleStrategy(kind="hierarchical",
                                  coarse_points=coarse,
                                  points=total - coarse,
                                  white_background=background)
        image, stats = oracle_render_image(
            scene.field, scene.target_camera, scene.near, scene.far,
            strategy, step=step)
        curves["ibrnet"].append(Fig9Point(
            label=strategy.label, avg_points=stats["avg_points"],
            mflops_per_pixel=_fig9_flops(strategy),
            psnr=M.psnr(image, reference)))
    return curves


def run_fig9(datasets: Sequence[str] = PROFILE_DATASETS, seed: int = 3,
             step: int = 4, reference_points: int = 384,
             pairs: Sequence[Tuple[int, int]] = FIG9_PAIRS,
             uniform_points: Sequence[int] = FIG9_UNIFORM_POINTS,
             image_scale: float = 1 / 8,
             workers: Optional[int] = None
             ) -> Dict[str, Dict[str, List[Fig9Point]]]:
    """{dataset: {"gen_nerf": [...], "ibrnet": [...]}} curves.

    Oracle-field evaluation isolates the sampling strategies (see
    ``repro.models.oracle``); IBRNet's curve uses its hierarchical
    sampler at matched total point budgets.  The per-dataset sweeps are
    independent and fan out over :func:`run_variants` (``workers=None``
    autodetects, 1 forces single-process); results come back in dataset
    order and are byte-identical either way.
    """
    params = dict(seed=seed, step=step, reference_points=reference_points,
                  pairs=tuple(tuple(pair) for pair in pairs),
                  uniform_points=tuple(uniform_points),
                  image_scale=image_scale)
    units = run_variants([(_fig9_unit, dict(dataset=dataset, **params))
                          for dataset in datasets], workers=workers)
    return dict(zip(datasets, units))


# ----------------------------------------------------------------------
# Multi-process variant runner
# ----------------------------------------------------------------------
# The table2/table3 harnesses train several *independent* model
# variants (identical schedules, per-variant RNG seeds, deterministic
# scene generation), which makes them embarrassingly parallel on
# multi-core hosts.  ``run_variants`` fans the variant units out over a
# ``concurrent.futures`` process pool; results always come back in task
# order and each unit is a pure function of its arguments, so the rows
# — and therefore the committed figure/table artefacts — are
# byte-identical whether the units run in one process or many.

def detect_workers(num_tasks: int, workers: Optional[int] = None) -> int:
    """Resolve the worker count for :func:`run_variants`.

    Priority: explicit ``workers`` argument, then the ``REPRO_WORKERS``
    environment variable, then ``os.cpu_count()``; always clamped to
    ``[1, num_tasks]``.  On a single-core host this returns 1 and the
    runner stays in-process.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                print(f"warning: ignoring non-integer REPRO_WORKERS={env!r}",
                      file=sys.stderr)
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), max(int(num_tasks), 1)))


def run_variants(tasks: Sequence[Tuple[Callable, Dict]],
                 workers: Optional[int] = None) -> List:
    """Run ``(function, kwargs)`` units, results in task order.

    With more than one worker the units execute on a
    ``ProcessPoolExecutor`` (functions must be module-level so they
    pickle); with one worker — or if the pool cannot start, e.g. in a
    sandbox without process spawning — they run sequentially in this
    process.  Exceptions raised *by a unit* propagate unchanged in
    either mode; only pool-infrastructure failures trigger the
    sequential fallback.
    """
    tasks = list(tasks)
    count = detect_workers(len(tasks), workers)
    if count <= 1 or len(tasks) <= 1:
        return [function(**kwargs) for function, kwargs in tasks]
    # Only pool-infrastructure failures fall back to sequential:
    # OSError during pool construction or task submission (worker
    # processes spawn lazily inside ``submit``, so a sandbox that
    # blocks process creation surfaces there, not in the constructor)
    # and BrokenProcessPool (a worker died without delivering a
    # result).  An exception *raised by a unit* is re-raised by
    # ``future.result()`` as itself — including OSError subclasses —
    # and must propagate, not trigger a silent sequential re-run of
    # every unit; ``futures`` being bound marks that submission
    # finished and any later OSError is the unit's own.
    futures = None
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=count) as pool:
            futures = [pool.submit(function, **kwargs)
                       for function, kwargs in tasks]
            return [future.result() for future in futures]
    except OSError as error:
        if futures is not None:
            raise
        print(f"warning: process pool unavailable ({error}); "
              f"running variants sequentially", file=sys.stderr)
        return [function(**kwargs) for function, kwargs in tasks]
    except concurrent.futures.process.BrokenProcessPool as error:
        print(f"warning: process pool broke ({error}); "
              f"running variants sequentially", file=sys.stderr)
        return [function(**kwargs) for function, kwargs in tasks]


# ----------------------------------------------------------------------
# Tables 2 & 3 — component ablation and per-scene finetuning
# ----------------------------------------------------------------------
@dataclass
class AblationRow:
    method: str
    mflops_per_pixel: float
    per_scene: Dict[str, Tuple[float, float]]   # scene -> (psnr, lpips)


def _small_model_config(ray_module: str, n_max: int) -> M.ModelConfig:
    return M.ModelConfig(feature_dim=12, view_hidden=12, score_hidden=6,
                         density_hidden=24, density_feature_dim=8,
                         ray_module=ray_module, n_max=n_max,
                         encoder_hidden=8)


def _subset_views(scene: Scene, source_images: np.ndarray, views: int,
                  feature_maps=None) -> Tuple[Scene, np.ndarray, object]:
    """Restrict a scene to its ``views`` closest source views (IBRNet's
    conditioning rule), keeping cameras, images, and any precomputed
    feature maps aligned.

    Feature maps subset by row: the encoder acts per view, so slicing
    the stacked full-view encoding is bit-identical to encoding the
    subset images.
    """
    from dataclasses import replace as dc_replace

    if views >= scene.num_source_views:
        return scene, source_images, feature_maps
    indices = scene.closest_source_indices(views)
    subset = dc_replace(scene, source_cameras=[scene.source_cameras[i]
                                               for i in indices])
    if feature_maps is not None:
        from .. import nn
        with nn.inference_mode():
            if isinstance(feature_maps, tuple):
                feature_maps = tuple(maps[indices] for maps in feature_maps)
            else:
                feature_maps = feature_maps[indices]
    return subset, source_images[indices], feature_maps


def _evaluate_model(model, scene: Scene, source_images: np.ndarray,
                    num_points: int, step: int,
                    hierarchical: bool = True,
                    views: Optional[int] = None,
                    reference: Optional[np.ndarray] = None,
                    feature_maps=None) -> Tuple[float, float]:
    """PSNR/LPIPS-proxy of a model render against the dense reference.

    ``reference`` and ``feature_maps`` accept precomputed values so
    harnesses that evaluate several variants on the same scene pay the
    dense reference render and the scene encoding once, not per variant
    (the reference depends only on (scene, step); subsetting views does
    not touch the target camera).
    """
    if views is not None:
        scene, source_images, feature_maps = _subset_views(
            scene, source_images, views, feature_maps)
    if reference is None:
        reference = M.render_target_reference(scene, num_points=192, step=step)
    if isinstance(model, M.GenNeRF):
        image, _ = M.render_image_gen_nerf(model, scene, source_images,
                                           step=step,
                                           feature_maps=feature_maps)
    else:
        image = M.render_image_ibrnet(model, scene, source_images,
                                      num_points=num_points, step=step,
                                      hierarchical=hierarchical,
                                      feature_maps=feature_maps)
    image = np.clip(image, 0.0, 1.0)
    return M.psnr(image, reference), M.lpips_proxy(image, reference)


TABLE2_VARIANTS = ("vanilla", "no_transformer", "mixer", "gen_nerf")


def _table2_prepare(train_steps: int, eval_step: int, image_scale: float,
                    num_points: int, seed: int, scenes: Sequence[str],
                    num_source_views: int):
    """Deterministic shared inputs of every table-2 variant unit.

    Scene generation is crc32-seeded and the dense reference render
    depends only on (scene, step), so rebuilding this in a worker
    process yields exactly the values the sequential path shares.
    The scene/reference renders come from the process-wide memo
    (:func:`llff_scene_data`), so Table 3 runs at the same view count
    — and repeated harness invocations — pay for them once.
    """
    memo_key = (float(image_scale), int(num_source_views), int(seed), 128)
    names = [name for name in LLFF_EVAL_SCENES if name in scenes]
    scene_data = llff_scene_data(image_scale, num_source_views, seed=seed,
                                 names=names)
    train_cfg = M.TrainConfig(steps=train_steps, rays_per_batch=40,
                              num_points=num_points, seed=seed)
    references = _llff_references(scene_data, memo_key, eval_step)
    return scene_data, train_cfg, references


def _table2_evaluate(model, method: str, workload_row: str, scene_data,
                     references, num_points: int, eval_step: int,
                     views: int = 10,
                     hierarchical: bool = True) -> AblationRow:
    """One table-2 row: PSNR/LPIPS-proxy per scene for one variant.

    Scene encodings come from ``SceneData.encoded_maps`` — cached per
    (model, scene) across the view-count evaluations and invalidated
    by encoder parameter versions, so a finetuned model re-encodes
    automatically while repeat evaluations reuse the maps.
    """
    workload = table2_workload(workload_row, num_views=views)
    per_scene = {}
    for name, data in scene_data.items():
        per_scene[name] = _evaluate_model(model, data.scene,
                                          data.source_images, num_points,
                                          eval_step, hierarchical,
                                          views=views,
                                          reference=references[name],
                                          feature_maps=data.encoded_maps(
                                              model))
    return AblationRow(method=method,
                       mflops_per_pixel=workload.flops_per_pixel() / 1e6,
                       per_scene=per_scene)


def _table2_unit(kind: str, train_steps: int, eval_step: int,
                 image_scale: float, num_points: int, seed: int,
                 scenes: Sequence[str], num_source_views: int,
                 prep=None) -> List[AblationRow]:
    """Train and evaluate one independent table-2 variant.

    Module-level and argument-pure so :func:`run_variants` can ship it
    to a worker process; every variant re-seeds its own RNG, so rows
    are identical no matter where (or next to what) the unit runs.
    ``prep`` optionally injects the shared :func:`_table2_prepare`
    output so the sequential path pays for it once.
    """
    if prep is None:
        prep = _table2_prepare(train_steps, eval_step, image_scale,
                               num_points, seed, scenes, num_source_views)
    scene_data, train_cfg, references = prep
    n_max = num_points

    def train(model) -> None:
        trainer = M.Trainer(model, list(scene_data.values()), train_cfg)
        trainer.fit(train_steps)
        model.eval()

    def evaluate(model, method: str, workload_row: str, views: int = 10,
                 hierarchical: bool = True) -> AblationRow:
        return _table2_evaluate(model, method, workload_row, scene_data,
                                references, num_points, eval_step,
                                views=views, hierarchical=hierarchical)

    rng = np.random.default_rng(seed)
    if kind == "vanilla":
        model = M.GeneralizableNeRF(
            _small_model_config("transformer", n_max), rng=rng)
        train(model)
        return [evaluate(model, "vanilla IBRNet", "vanilla")]
    if kind == "no_transformer":
        model = M.GeneralizableNeRF(_small_model_config("none", n_max),
                                    rng=rng)
        train(model)
        return [evaluate(model, "- ray transformer", "no_ray_transformer")]
    if kind == "mixer":
        model = M.GeneralizableNeRF(_small_model_config("mixer", n_max),
                                    rng=rng)
        train(model)
        return [evaluate(model, "+ Ray-Mixer", "ray_mixer")]
    if kind != "gen_nerf":
        raise KeyError(f"unknown table-2 variant {kind!r}")

    # Coarse-then-focus plus the pruned ladder, one unit: pruning
    # starts from the trained Gen-NeRF weights.
    gen_cfg = M.GenNerfConfig(fine=_small_model_config("mixer", n_max),
                              coarse_points=8,
                              focused_points=max(8, num_points - 8))
    gen_nerf = M.GenNeRF(gen_cfg, rng=rng)
    train(gen_nerf)
    rows = [evaluate(gen_nerf, "+ Coarse-then-Focus", "coarse_focus")]

    pruned = M.prune_gen_nerf(gen_nerf, sparsity=0.75)
    M.finetune(pruned, list(scene_data.values())[0].scene,
               steps=max(30, train_steps // 6),
               config=M.TrainConfig(steps=train_steps, rays_per_batch=40,
                                    num_points=num_points, seed=seed + 1,
                                    learning_rate=2e-4),
               data=list(scene_data.values())[0])
    pruned.eval()
    for views in (10, 6, 4):
        rows.append(evaluate(pruned, f"+ channel pruning ({views} views)",
                             "pruned", views=views))
    return rows


def run_table2(train_steps: int = 240, eval_step: int = 8,
               image_scale: float = 1 / 12, num_points: int = 20,
               seed: int = 1, scenes: Sequence[str] = ("fern", "fortress",
                                                       "horns", "trex"),
               num_source_views: int = 10,
               workers: Optional[int] = None) -> List[AblationRow]:
    """Component ablation (paper Table 2) at numpy scale.

    Trains each variant with an identical schedule on the four LLFF
    scene analogues, then evaluates PSNR/LPIPS-proxy per scene.
    MFLOPs/pixel columns come from the paper-scale workload model.

    The four variant units (vanilla / no-transformer / mixer / the
    Gen-NeRF-plus-pruning ladder) are independent and run through
    :func:`run_variants`: ``workers=None`` autodetects (``REPRO_WORKERS``
    env, then CPU count), 1 forces the single-process path.  Rows come
    back in the fixed ladder order and are byte-identical either way.
    """
    params = dict(train_steps=train_steps, eval_step=eval_step,
                  image_scale=image_scale, num_points=num_points,
                  seed=seed, scenes=tuple(scenes),
                  num_source_views=num_source_views)
    count = detect_workers(len(TABLE2_VARIANTS), workers)
    if count <= 1:
        prep = _table2_prepare(**params)
        units = [_table2_unit(kind, prep=prep, **params)
                 for kind in TABLE2_VARIANTS]
    else:
        units = run_variants([(_table2_unit, dict(kind=kind, **params))
                              for kind in TABLE2_VARIANTS], workers=count)
    return [row for unit_rows in units for row in unit_rows]


TABLE3_METHODS = ("IBRNet", "Gen-NeRF")


def _table3_prepare(views: int, train_steps: int, eval_step: int,
                    image_scale: float, num_points: int, seed: int):
    """Deterministic shared inputs of a table-3 (view count) pair.

    One dense reference per scene for this view count; both methods
    (and all their finetuned variants) compare against it.  Prepared
    scenes and references come from the process-wide memo, so the
    10-view rows share Table 2's ground-truth renders.
    """
    num_source_views = max(views, 6)
    memo_key = (float(image_scale), int(num_source_views), int(seed), 128)
    scene_data = llff_scene_data(image_scale, num_source_views, seed=seed)
    train_cfg = M.TrainConfig(steps=train_steps, rays_per_batch=40,
                              num_points=num_points, seed=seed)
    references = _llff_references(scene_data, memo_key, eval_step)
    return scene_data, train_cfg, references


def _table3_unit(method: str, views: int, train_steps: int,
                 finetune_steps: int, eval_step: int, image_scale: float,
                 num_points: int, seed: int, prep=None) -> AblationRow:
    """Pretrain one method at one view count, finetune per scene,
    evaluate — one independent, process-shippable table-3 unit."""
    if prep is None:
        prep = _table3_prepare(views, train_steps, eval_step, image_scale,
                               num_points, seed)
    scene_data, train_cfg, references = prep

    rng = np.random.default_rng(seed)
    if method == "IBRNet":
        model = M.GeneralizableNeRF(
            _small_model_config("transformer", num_points), rng=rng)
        workload_row = "vanilla"
    elif method == "Gen-NeRF":
        gen_cfg = M.GenNerfConfig(
            fine=_small_model_config("mixer", num_points), coarse_points=8,
            focused_points=max(8, num_points - 8))
        model = M.GenNeRF(gen_cfg, rng=rng)
        workload_row = "pruned"
    else:
        raise KeyError(f"unknown table-3 method {method!r}")
    M.Trainer(model, list(scene_data.values()), train_cfg).fit(train_steps)

    per_scene = {}
    for name, data in scene_data.items():
        state = model.state_dict()
        M.finetune(model, data.scene, steps=finetune_steps,
                   config=M.TrainConfig(steps=finetune_steps,
                                        rays_per_batch=40,
                                        num_points=num_points,
                                        seed=seed + 7,
                                        learning_rate=2e-4),
                   data=data)
        model.eval()
        per_scene[name] = _evaluate_model(
            model, data.scene, data.source_images, num_points,
            eval_step, reference=references[name],
            feature_maps=data.encoded_maps(model))
        model.load_state_dict(state)   # reset to the pretrained net
    workload = table2_workload(workload_row, num_views=views)
    return AblationRow(method=f"{method} ({views} views)",
                       mflops_per_pixel=workload.flops_per_pixel() / 1e6,
                       per_scene=per_scene)


def run_table3(train_steps: int = 240, finetune_steps: int = 80,
               eval_step: int = 8, image_scale: float = 1 / 12,
               num_points: int = 20, seed: int = 1,
               view_counts: Sequence[int] = (4, 10),
               workers: Optional[int] = None) -> List[AblationRow]:
    """Per-scene finetuning comparison (paper Table 3).

    Pretrains an IBRNet baseline and a Gen-NeRF model, then finetunes a
    copy on each scene before evaluation.  The (view count, method)
    units are independent and run through :func:`run_variants` —
    ``workers=None`` autodetects, 1 forces single-process — with rows
    returned in the fixed (views, method) order, byte-identical either
    way.
    """
    params = dict(train_steps=train_steps, finetune_steps=finetune_steps,
                  eval_step=eval_step, image_scale=image_scale,
                  num_points=num_points, seed=seed)
    pairs = [(views, method) for views in view_counts
             for method in TABLE3_METHODS]
    count = detect_workers(len(pairs), workers)
    if count <= 1:
        rows = []
        for views in view_counts:
            prep = _table3_prepare(views, train_steps, eval_step,
                                   image_scale, num_points, seed)
            for method in TABLE3_METHODS:
                rows.append(_table3_unit(method, views, prep=prep,
                                         **params))
        return rows
    return list(run_variants(
        [(_table3_unit, dict(method=method, views=views, **params))
         for views, method in pairs], workers=count))


# ----------------------------------------------------------------------
# Fig. 10 / Fig. 11 / Table 4 — accelerator vs devices
# ----------------------------------------------------------------------
def run_fig10(seed: int = 0) -> Dict[str, Dict[str, float]]:
    """FPS of Gen-NeRF accelerator vs RTX 2080Ti vs TX2 on 3 datasets."""
    pipeline = CoDesignPipeline()
    return {dataset: pipeline.fps_comparison(dataset, seed=seed)
            for dataset in PROFILE_DATASETS}


def _fig11_unit(axis: str, value: int, seed: int) -> Dict[str, float]:
    """One Fig. 11 sweep point (a view count or a point count).

    Builds its own :class:`CoDesignPipeline` — the simulators are pure
    functions of the workload (memoisation only saves time), so a
    fresh pipeline per unit returns exactly the shared-pipeline values
    and the unit can ship to a worker process.
    """
    pipeline = CoDesignPipeline()
    if axis == "views":
        row = pipeline.fps_comparison("nerf_synthetic", num_views=value,
                                      seed=seed)
        row["num_views"] = value
    elif axis == "points":
        row = pipeline.fps_comparison("nerf_synthetic",
                                      points_per_ray=value, seed=seed)
        row["points_per_ray"] = value
    else:
        raise KeyError(f"unknown fig11 axis {axis!r}")
    return row


def run_fig11(view_counts: Sequence[int] = (10, 6, 4, 2, 1),
              point_counts: Sequence[int] = (128, 112, 96, 80, 64),
              seed: int = 0,
              workers: Optional[int] = None
              ) -> Dict[str, List[Dict[str, float]]]:
    """Scalability sweeps on NeRF-Synthetic 800x800 (paper Fig. 11).

    Every sweep point is an independent simulator run; they fan out
    over :func:`run_variants` (``workers=None`` autodetects, 1 forces
    single-process) and come back in sweep order, byte-identical
    either way.
    """
    tasks = [(_fig11_unit, dict(axis="views", value=int(views), seed=seed))
             for views in view_counts]
    tasks += [(_fig11_unit, dict(axis="points", value=int(points),
                                 seed=seed))
              for points in point_counts]
    rows = run_variants(tasks, workers=workers)
    return {"views": rows[:len(view_counts)],
            "points": rows[len(view_counts):]}


def run_table4(seed: int = 0) -> List[Dict[str, object]]:
    """Device spec table with our measured Gen-NeRF row alongside the
    paper's reported rows."""
    pipeline = CoDesignPipeline()
    sim = pipeline.simulate_accelerator("nerf_synthetic", seed=seed)
    rows: List[Dict[str, object]] = [{
        "device": "Gen-NeRF (simulated)",
        "sram_mb": 0.8,
        "area_mm2": full_chip_budget()["total"].area_mm2,
        "frequency_ghz": 1.0,
        "dram": "LPDDR4-2400",
        "bandwidth_gb_s": 17.8,
        "technology_nm": 28,
        "typical_power_w": typical_chip_power_w(),
        "typical_fps": sim.fps,
    }]
    for spec in TABLE4_PAPER_ROWS:
        rows.append({
            "device": spec.name + " (paper)",
            "sram_mb": spec.sram_mb,
            "area_mm2": spec.area_mm2,
            "frequency_ghz": spec.frequency_ghz,
            "dram": spec.dram,
            "bandwidth_gb_s": spec.bandwidth_gb_s,
            "technology_nm": spec.technology_nm,
            "typical_power_w": spec.typical_power_w,
            "typical_fps": spec.typical_fps,
        })
    return rows


# ----------------------------------------------------------------------
# Fig. 12 — dataflow / storage ablation
# ----------------------------------------------------------------------
def run_fig12(view_counts: Sequence[int] = (10, 6, 2), seed: int = 0
              ) -> Dict[int, Dict[str, Dict[str, float]]]:
    """{views: {variant: {data_s, compute_s, total_s, utilization}}}."""
    results: Dict[int, Dict[str, Dict[str, float]]] = {}
    for views in view_counts:
        per_variant = {}
        for name, sim in dataflow_ablation("nerf_synthetic", views,
                                           seed=seed).items():
            per_variant[name] = {
                "data_s": sim.fetch_time_s,
                "compute_s": sim.compute_time_s,
                "total_s": sim.total_time_s,
                "exposed_data_s": sim.data_time_s,
                "utilization": sim.pe_utilization,
                "prefetch_mb": sim.prefetch_bytes / 1e6,
            }
        results[views] = per_variant
    return results


# ----------------------------------------------------------------------
# Extensions beyond the paper (DESIGN.md "ablation" bullets)
# ----------------------------------------------------------------------
def run_coarse_budget_ablation(dataset: str = "nerf_synthetic", seed: int = 3,
                               step: int = 8, image_scale: float = 1 / 8,
                               coarse_counts: Sequence[int] = (4, 8, 16, 32),
                               taus: Sequence[float] = (1e-4, 1e-3, 1e-2),
                               focused: int = 32) -> List[Dict[str, float]]:
    """PSNR sensitivity to the coarse-pass budget N_c and threshold tau."""
    scene = make_scene(dataset, seed=seed, image_scale=image_scale)
    reference = M.render_target_reference(scene, 384, step)
    rows = []
    for coarse in coarse_counts:
        for tau in taus:
            strategy = OracleStrategy(kind="coarse_focus",
                                      coarse_points=coarse, points=focused,
                                      tau=tau,
                                      white_background=scene.spec.white_background)
            image, stats = oracle_render_image(
                scene.field, scene.target_camera, scene.near, scene.far,
                strategy, step=step)
            rows.append({"coarse_points": float(coarse), "tau": tau,
                         "avg_points": stats["avg_points"],
                         "psnr": M.psnr(image, reference)})
    return rows


def run_patch_candidate_ablation(seed: int = 0) -> List[Dict[str, float]]:
    """Prefetch traffic and FPS vs the candidate-set size M."""
    from ..hardware.accelerator import AcceleratorConfig, GenNerfAccelerator
    from ..hardware.scheduler import DEFAULT_CANDIDATES, SchedulerConfig
    from .pipeline import hardware_rig

    spec = DATASETS["nerf_synthetic"]
    rig = hardware_rig(spec, 6, seed=seed)
    workload = typical_workload(spec.height, spec.width, 6)
    rows = []
    for m in (1, 2, 4, len(DEFAULT_CANDIDATES)):
        config = AcceleratorConfig(
            name=f"M={m}",
            scheduler=SchedulerConfig(candidates=DEFAULT_CANDIDATES[:m]))
        sim = GenNerfAccelerator(config).simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)
        rows.append({"num_candidates": float(m), "fps": sim.fps,
                     "prefetch_mb": sim.prefetch_bytes / 1e6,
                     "utilization": sim.pe_utilization})
    return rows
