"""Experiment unit functions and the legacy ``run_*`` entry points.

This module holds the *bodies* of every paper experiment as
module-level, argument-pure, picklable unit functions — the task list
that :class:`repro.core.registry.Experiment` objects fan out over
:func:`repro.core.run_variants`.  Hardware experiments execute at the
paper's full resolutions (the simulator does not march rays);
algorithm experiments take scale knobs so the numpy training stays
tractable, with defaults chosen to finish in minutes.

The historical ``run_<name>`` functions remain as thin wrappers that
delegate to the registry (``repro.core.registry``) so existing callers
keep working; the orchestration — prepare → units → reduce → render —
lives entirely in the registry layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import models as M
from ..hardware.area_power import PAPER_TABLE1, full_chip_budget
from ..hardware.energy import typical_chip_power_w
from ..hardware.gpu_model import GpuModel, JETSON_TX2, RTX_2080TI
from ..hardware.icarus import TABLE4_PAPER_ROWS
from ..models.oracle import OracleStrategy, oracle_render_image
from ..models.workload import (RenderWorkload, profiling_workload,
                               table2_workload, typical_workload)
from ..scenes.datasets import DATASETS, Scene, make_scene
from .context import (LLFF_EVAL_SCENES, RunContext, clear_scene_memos,
                      llff_references, llff_scene_data)
from .pipeline import CoDesignPipeline, dataflow_ablation
from .runner import detect_workers, run_variants

PROFILE_DATASETS = ("deepvoxels", "nerf_synthetic", "llff")

# Fig. 9's coarse/focused pairs (paper Sec. 5.2).
FIG9_PAIRS = ((8, 8), (8, 16), (16, 32), (32, 64))
FIG9_UNIFORM_POINTS = (16, 24, 48, 96, 192)


def _experiment(name: str):
    """The registered experiment (imported lazily: the registry module
    imports this one for the unit functions)."""
    from .registry import get_experiment

    return get_experiment(name)


# ----------------------------------------------------------------------
# Table 1 — area / power
# ----------------------------------------------------------------------
def _table1_unit() -> List[Tuple[str, float, float, float, float]]:
    """Rows: (module, area, paper area, power, paper power)."""
    budget = full_chip_budget()
    rows = []
    for key in ("scheduler", "ppu", "engine", "prefetch", "total"):
        paper_area, paper_power = PAPER_TABLE1[key]
        module = budget[key]
        rows.append((module.name, module.area_mm2, paper_area,
                     module.power_mw, paper_power))
    return rows


def run_table1() -> List[Tuple[str, float, float, float, float]]:
    """Legacy entry point: Table 1 rows through the registry."""
    return _experiment("table1").run().rows


# ----------------------------------------------------------------------
# Fig. 2 — GPU latency breakdown of the profiling workload
# ----------------------------------------------------------------------
def _fig2_unit() -> Dict[str, Dict[str, Dict[str, float]]]:
    """{device: {dataset: {phase: seconds, 'total': s, 'fps': f}}}.

    Profiling setup of Sec. 2.3: 10 source views, 196 points per ray,
    the vanilla (ray transformer) model.
    """
    devices = {"rtx2080ti": GpuModel(RTX_2080TI), "tx2": GpuModel(JETSON_TX2)}
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for device_name, model in devices.items():
        per_dataset = {}
        for dataset in PROFILE_DATASETS:
            spec = DATASETS[dataset]
            workload = profiling_workload(spec.height, spec.width)
            sim = model.simulate_frame(workload)
            phases = {
                "acquire_features": sim.phase_seconds["gather"],
                "mlp": sim.phase_seconds["mlp"],
                "ray_transformer": sim.phase_seconds["ray_module"],
                "others": (sim.phase_seconds["sampling"]
                           + sim.phase_seconds["others"]),
            }
            phases["total"] = sim.total_time_s
            phases["fps"] = sim.fps
            phases["attention_dnn_fraction"] = sim.dnn_attention_fraction()
            per_dataset[dataset] = phases
        results[device_name] = per_dataset
    return results


def run_fig2() -> Dict[str, Dict[str, Dict[str, float]]]:
    """Legacy entry point: Fig. 2 breakdown through the registry."""
    return _experiment("fig2").run().rows


# ----------------------------------------------------------------------
# Fig. 9 — PSNR vs sampled points / MFLOPs (oracle-field evaluation)
# ----------------------------------------------------------------------
@dataclass
class Fig9Point:
    label: str
    avg_points: float
    mflops_per_pixel: float
    psnr: float


def _fig9_flops(strategy: OracleStrategy, num_views: int = 10) -> float:
    """MFLOPs/pixel of the paper-scale model under this sampling."""
    if strategy.kind == "coarse_focus":
        workload = RenderWorkload(height=1, width=1, num_views=num_views,
                                  points_per_ray=strategy.points,
                                  ray_module="mixer",
                                  coarse_points=strategy.coarse_points,
                                  n_max=max(64, strategy.points
                                            + strategy.coarse_points))
    else:
        total = strategy.points + strategy.coarse_points
        workload = RenderWorkload(height=1, width=1, num_views=num_views,
                                  points_per_ray=total,
                                  ray_module="transformer")
    return workload.flops_per_pixel() / 1e6


def _fig9_unit(dataset: str, seed: int, step: int, reference_points: int,
               pairs: Sequence[Tuple[int, int]],
               uniform_points: Sequence[int], image_scale: float
               ) -> Dict[str, List[Fig9Point]]:
    """One dataset's Fig. 9 oracle sweep — a process-shippable unit.

    Module-level and argument-pure (scene generation is deterministic),
    so :func:`run_variants` can fan the per-dataset sweeps out; curves
    are identical wherever the unit runs.
    """
    scene = make_scene(dataset, seed=seed, image_scale=image_scale)
    reference = M.render_target_reference(scene, reference_points, step)
    curves: Dict[str, List[Fig9Point]] = {"gen_nerf": [], "ibrnet": []}

    background = scene.spec.white_background
    for coarse, focused in pairs:
        strategy = OracleStrategy(kind="coarse_focus",
                                  coarse_points=coarse, points=focused,
                                  white_background=background)
        image, stats = oracle_render_image(
            scene.field, scene.target_camera, scene.near, scene.far,
            strategy, step=step)
        curves["gen_nerf"].append(Fig9Point(
            label=strategy.label, avg_points=stats["avg_points"],
            mflops_per_pixel=_fig9_flops(strategy),
            psnr=M.psnr(image, reference)))

    for total in uniform_points:
        coarse = max(4, total // 3)
        strategy = OracleStrategy(kind="hierarchical",
                                  coarse_points=coarse,
                                  points=total - coarse,
                                  white_background=background)
        image, stats = oracle_render_image(
            scene.field, scene.target_camera, scene.near, scene.far,
            strategy, step=step)
        curves["ibrnet"].append(Fig9Point(
            label=strategy.label, avg_points=stats["avg_points"],
            mflops_per_pixel=_fig9_flops(strategy),
            psnr=M.psnr(image, reference)))
    return curves


def run_fig9(datasets: Sequence[str] = PROFILE_DATASETS, seed: int = 3,
             step: int = 4, reference_points: int = 384,
             pairs: Sequence[Tuple[int, int]] = FIG9_PAIRS,
             uniform_points: Sequence[int] = FIG9_UNIFORM_POINTS,
             image_scale: float = 1 / 8,
             workers: Optional[int] = None
             ) -> Dict[str, Dict[str, List[Fig9Point]]]:
    """Legacy entry point: {dataset: {"gen_nerf": [...], "ibrnet": [...]}}
    curves through the registry.

    Oracle-field evaluation isolates the sampling strategies (see
    ``repro.models.oracle``); IBRNet's curve uses its hierarchical
    sampler at matched total point budgets.  The per-dataset sweeps are
    independent and fan out over :func:`run_variants` (``workers=None``
    autodetects, 1 forces single-process); results come back in dataset
    order and are byte-identical either way.
    """
    return _experiment("fig9").run(
        RunContext(workers=workers), datasets=tuple(datasets), seed=seed,
        step=step, reference_points=reference_points,
        pairs=tuple(tuple(pair) for pair in pairs),
        uniform_points=tuple(uniform_points),
        image_scale=image_scale).rows


# ----------------------------------------------------------------------
# Tables 2 & 3 — component ablation and per-scene finetuning
# ----------------------------------------------------------------------
@dataclass
class AblationRow:
    method: str
    mflops_per_pixel: float
    per_scene: Dict[str, Tuple[float, float]]   # scene -> (psnr, lpips)


def _small_model_config(ray_module: str, n_max: int) -> M.ModelConfig:
    return M.ModelConfig(feature_dim=12, view_hidden=12, score_hidden=6,
                         density_hidden=24, density_feature_dim=8,
                         ray_module=ray_module, n_max=n_max,
                         encoder_hidden=8)


def _subset_views(scene: Scene, source_images: np.ndarray, views: int,
                  feature_maps=None) -> Tuple[Scene, np.ndarray, object]:
    """Restrict a scene to its ``views`` closest source views (IBRNet's
    conditioning rule), keeping cameras, images, and any precomputed
    feature maps aligned.

    Feature maps subset by row: the encoder acts per view, so slicing
    the stacked full-view encoding is bit-identical to encoding the
    subset images.
    """
    from dataclasses import replace as dc_replace

    if views >= scene.num_source_views:
        return scene, source_images, feature_maps
    indices = scene.closest_source_indices(views)
    subset = dc_replace(scene, source_cameras=[scene.source_cameras[i]
                                               for i in indices])
    if feature_maps is not None:
        from .. import nn
        with nn.inference_mode():
            if isinstance(feature_maps, tuple):
                feature_maps = tuple(maps[indices] for maps in feature_maps)
            else:
                feature_maps = feature_maps[indices]
    return subset, source_images[indices], feature_maps


def _evaluate_model(model, scene: Scene, source_images: np.ndarray,
                    num_points: int, step: int,
                    hierarchical: bool = True,
                    views: Optional[int] = None,
                    reference: Optional[np.ndarray] = None,
                    feature_maps=None) -> Tuple[float, float]:
    """PSNR/LPIPS-proxy of a model render against the dense reference.

    ``reference`` and ``feature_maps`` accept precomputed values so
    harnesses that evaluate several variants on the same scene pay the
    dense reference render and the scene encoding once, not per variant
    (the reference depends only on (scene, step); subsetting views does
    not touch the target camera).
    """
    if views is not None:
        scene, source_images, feature_maps = _subset_views(
            scene, source_images, views, feature_maps)
    if reference is None:
        reference = M.render_target_reference(scene, num_points=192, step=step)
    if isinstance(model, M.GenNeRF):
        image, _ = M.render_image_gen_nerf(model, scene, source_images,
                                           step=step,
                                           feature_maps=feature_maps)
    else:
        image = M.render_image_ibrnet(model, scene, source_images,
                                      num_points=num_points, step=step,
                                      hierarchical=hierarchical,
                                      feature_maps=feature_maps)
    image = np.clip(image, 0.0, 1.0)
    return M.psnr(image, reference), M.lpips_proxy(image, reference)


TABLE2_VARIANTS = ("vanilla", "no_transformer", "mixer", "gen_nerf")


def _table2_prepare(train_steps: int, eval_step: int, image_scale: float,
                    num_points: int, seed: int, scenes: Sequence[str],
                    num_source_views: int, workers: Optional[int] = 1):
    """Deterministic shared inputs of every table-2 variant unit.

    Scene generation is crc32-seeded and the dense reference render
    depends only on (scene, step), so rebuilding this in a worker
    process yields exactly the values the sequential path shares.
    The scene/reference renders come from the process-wide memo
    (:func:`repro.core.context.llff_scene_data`) — optionally backed by
    the ``REPRO_CACHE_DIR`` disk cache — so Table 3 runs at the same
    view count, repeated harness invocations, and pool workers pay for
    them once.
    """
    memo_key = (float(image_scale), int(num_source_views), int(seed), 128)
    names = [name for name in LLFF_EVAL_SCENES if name in scenes]
    scene_data = llff_scene_data(image_scale, num_source_views, seed=seed,
                                 names=names, workers=workers)
    train_cfg = M.TrainConfig(steps=train_steps, rays_per_batch=40,
                              num_points=num_points, seed=seed)
    references = llff_references(scene_data, memo_key, eval_step)
    return scene_data, train_cfg, references


def _table2_evaluate(model, method: str, workload_row: str, scene_data,
                     references, num_points: int, eval_step: int,
                     views: int = 10,
                     hierarchical: bool = True) -> AblationRow:
    """One table-2 row: PSNR/LPIPS-proxy per scene for one variant.

    Scene encodings come from ``SceneData.encoded_maps`` — cached per
    (model, scene) across the view-count evaluations and invalidated
    by encoder parameter versions, so a finetuned model re-encodes
    automatically while repeat evaluations reuse the maps.
    """
    workload = table2_workload(workload_row, num_views=views)
    per_scene = {}
    for name, data in scene_data.items():
        per_scene[name] = _evaluate_model(model, data.scene,
                                          data.source_images, num_points,
                                          eval_step, hierarchical,
                                          views=views,
                                          reference=references[name],
                                          feature_maps=data.encoded_maps(
                                              model))
    return AblationRow(method=method,
                       mflops_per_pixel=workload.flops_per_pixel() / 1e6,
                       per_scene=per_scene)


def _table2_unit(kind: str, train_steps: int, eval_step: int,
                 image_scale: float, num_points: int, seed: int,
                 scenes: Sequence[str], num_source_views: int,
                 prep=None) -> List[AblationRow]:
    """Train and evaluate one independent table-2 variant.

    Module-level and argument-pure so :func:`run_variants` can ship it
    to a worker process; every variant re-seeds its own RNG, so rows
    are identical no matter where (or next to what) the unit runs.
    ``prep`` optionally injects the shared :func:`_table2_prepare`
    output so the sequential path pays for it once.
    """
    if prep is None:
        prep = _table2_prepare(train_steps, eval_step, image_scale,
                               num_points, seed, scenes, num_source_views)
    scene_data, train_cfg, references = prep
    n_max = num_points

    def train(model) -> None:
        trainer = M.Trainer(model, list(scene_data.values()), train_cfg)
        trainer.fit(train_steps)
        model.eval()

    def evaluate(model, method: str, workload_row: str, views: int = 10,
                 hierarchical: bool = True) -> AblationRow:
        return _table2_evaluate(model, method, workload_row, scene_data,
                                references, num_points, eval_step,
                                views=views, hierarchical=hierarchical)

    rng = np.random.default_rng(seed)
    if kind == "vanilla":
        model = M.GeneralizableNeRF(
            _small_model_config("transformer", n_max), rng=rng)
        train(model)
        return [evaluate(model, "vanilla IBRNet", "vanilla")]
    if kind == "no_transformer":
        model = M.GeneralizableNeRF(_small_model_config("none", n_max),
                                    rng=rng)
        train(model)
        return [evaluate(model, "- ray transformer", "no_ray_transformer")]
    if kind == "mixer":
        model = M.GeneralizableNeRF(_small_model_config("mixer", n_max),
                                    rng=rng)
        train(model)
        return [evaluate(model, "+ Ray-Mixer", "ray_mixer")]
    if kind != "gen_nerf":
        raise KeyError(f"unknown table-2 variant {kind!r}")

    # Coarse-then-focus plus the pruned ladder, one unit: pruning
    # starts from the trained Gen-NeRF weights.
    gen_cfg = M.GenNerfConfig(fine=_small_model_config("mixer", n_max),
                              coarse_points=8,
                              focused_points=max(8, num_points - 8))
    gen_nerf = M.GenNeRF(gen_cfg, rng=rng)
    train(gen_nerf)
    rows = [evaluate(gen_nerf, "+ Coarse-then-Focus", "coarse_focus")]

    pruned = M.prune_gen_nerf(gen_nerf, sparsity=0.75)
    M.finetune(pruned, list(scene_data.values())[0].scene,
               steps=max(30, train_steps // 6),
               config=M.TrainConfig(steps=train_steps, rays_per_batch=40,
                                    num_points=num_points, seed=seed + 1,
                                    learning_rate=2e-4),
               data=list(scene_data.values())[0])
    pruned.eval()
    for views in (10, 6, 4):
        rows.append(evaluate(pruned, f"+ channel pruning ({views} views)",
                             "pruned", views=views))
    return rows


def run_table2(train_steps: int = 240, eval_step: int = 8,
               image_scale: float = 1 / 12, num_points: int = 20,
               seed: int = 1, scenes: Sequence[str] = ("fern", "fortress",
                                                       "horns", "trex"),
               num_source_views: int = 10,
               workers: Optional[int] = None) -> List[AblationRow]:
    """Legacy entry point: component ablation (paper Table 2) through
    the registry.

    Trains each variant with an identical schedule on the four LLFF
    scene analogues, then evaluates PSNR/LPIPS-proxy per scene.
    MFLOPs/pixel columns come from the paper-scale workload model.

    The four variant units (vanilla / no-transformer / mixer / the
    Gen-NeRF-plus-pruning ladder) are independent and run through
    :func:`run_variants`: ``workers=None`` autodetects (``REPRO_WORKERS``
    env, then CPU count), 1 forces the single-process path.  Rows come
    back in the fixed ladder order and are byte-identical either way.
    """
    return _experiment("table2").run(
        RunContext(workers=workers), train_steps=train_steps,
        eval_step=eval_step, image_scale=image_scale,
        num_points=num_points, seed=seed, scenes=tuple(scenes),
        num_source_views=num_source_views).rows


TABLE3_METHODS = ("IBRNet", "Gen-NeRF")


def _table3_prepare(views: int, train_steps: int, eval_step: int,
                    image_scale: float, num_points: int, seed: int,
                    workers: Optional[int] = 1):
    """Deterministic shared inputs of a table-3 (view count) pair.

    One dense reference per scene for this view count; both methods
    (and all their finetuned variants) compare against it.  Prepared
    scenes and references come from the process-wide memo, so the
    10-view rows share Table 2's ground-truth renders.
    """
    num_source_views = max(views, 6)
    memo_key = (float(image_scale), int(num_source_views), int(seed), 128)
    scene_data = llff_scene_data(image_scale, num_source_views, seed=seed,
                                 workers=workers)
    train_cfg = M.TrainConfig(steps=train_steps, rays_per_batch=40,
                              num_points=num_points, seed=seed)
    references = llff_references(scene_data, memo_key, eval_step)
    return scene_data, train_cfg, references


def _table3_unit(method: str, views: int, train_steps: int,
                 finetune_steps: int, eval_step: int, image_scale: float,
                 num_points: int, seed: int, prep=None) -> AblationRow:
    """Pretrain one method at one view count, finetune per scene,
    evaluate — one independent, process-shippable table-3 unit."""
    if prep is None:
        prep = _table3_prepare(views, train_steps, eval_step, image_scale,
                               num_points, seed)
    scene_data, train_cfg, references = prep

    rng = np.random.default_rng(seed)
    if method == "IBRNet":
        model = M.GeneralizableNeRF(
            _small_model_config("transformer", num_points), rng=rng)
        workload_row = "vanilla"
    elif method == "Gen-NeRF":
        gen_cfg = M.GenNerfConfig(
            fine=_small_model_config("mixer", num_points), coarse_points=8,
            focused_points=max(8, num_points - 8))
        model = M.GenNeRF(gen_cfg, rng=rng)
        workload_row = "pruned"
    else:
        raise KeyError(f"unknown table-3 method {method!r}")
    M.Trainer(model, list(scene_data.values()), train_cfg).fit(train_steps)

    per_scene = {}
    for name, data in scene_data.items():
        state = model.state_dict()
        M.finetune(model, data.scene, steps=finetune_steps,
                   config=M.TrainConfig(steps=finetune_steps,
                                        rays_per_batch=40,
                                        num_points=num_points,
                                        seed=seed + 7,
                                        learning_rate=2e-4),
                   data=data)
        model.eval()
        per_scene[name] = _evaluate_model(
            model, data.scene, data.source_images, num_points,
            eval_step, reference=references[name],
            feature_maps=data.encoded_maps(model))
        model.load_state_dict(state)   # reset to the pretrained net
    workload = table2_workload(workload_row, num_views=views)
    return AblationRow(method=f"{method} ({views} views)",
                       mflops_per_pixel=workload.flops_per_pixel() / 1e6,
                       per_scene=per_scene)


def run_table3(train_steps: int = 240, finetune_steps: int = 80,
               eval_step: int = 8, image_scale: float = 1 / 12,
               num_points: int = 20, seed: int = 1,
               view_counts: Sequence[int] = (4, 10),
               workers: Optional[int] = None) -> List[AblationRow]:
    """Legacy entry point: per-scene finetuning comparison (paper
    Table 3) through the registry.

    Pretrains an IBRNet baseline and a Gen-NeRF model, then finetunes a
    copy on each scene before evaluation.  The (view count, method)
    units are independent and run through :func:`run_variants` —
    ``workers=None`` autodetects, 1 forces single-process — with rows
    returned in the fixed (views, method) order, byte-identical either
    way.
    """
    return _experiment("table3").run(
        RunContext(workers=workers), train_steps=train_steps,
        finetune_steps=finetune_steps, eval_step=eval_step,
        image_scale=image_scale, num_points=num_points, seed=seed,
        view_counts=tuple(view_counts)).rows


# ----------------------------------------------------------------------
# Fig. 10 / Fig. 11 / Table 4 — accelerator vs devices
# ----------------------------------------------------------------------
def _fig10_unit(seed: int,
                workers: Optional[int] = 1) -> Dict[str, Dict[str, float]]:
    """FPS of Gen-NeRF accelerator vs RTX 2080Ti vs TX2 on 3 datasets.

    ``workers`` shards each frame simulation intra-frame (bit-identical
    at any width); the registry threads ``ctx.workers`` through when
    this unit runs alone, and the nested-pool guard keeps it sequential
    when it ships to a ``run_variants`` worker instead."""
    pipeline = CoDesignPipeline()
    return {dataset: pipeline.fps_comparison(dataset, seed=seed,
                                             workers=workers)
            for dataset in PROFILE_DATASETS}


def run_fig10(seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Legacy entry point: Fig. 10 comparison through the registry."""
    return _experiment("fig10").run(seed=seed).rows


def _fig11_unit(axis: str, value: int, seed: int,
                workers: Optional[int] = 1) -> Dict[str, float]:
    """One Fig. 11 sweep point (a view count or a point count).

    Builds its own :class:`CoDesignPipeline` — the simulators are pure
    functions of the workload (memoisation only saves time), so a
    fresh pipeline per unit returns exactly the shared-pipeline values
    and the unit can ship to a worker process.  ``workers`` shards the
    accelerator simulation within the unit; inside a ``run_variants``
    worker the guard resolves it back to 1.
    """
    pipeline = CoDesignPipeline()
    if axis == "views":
        row = pipeline.fps_comparison("nerf_synthetic", num_views=value,
                                      seed=seed, workers=workers)
        row["num_views"] = value
    elif axis == "points":
        row = pipeline.fps_comparison("nerf_synthetic",
                                      points_per_ray=value, seed=seed,
                                      workers=workers)
        row["points_per_ray"] = value
    else:
        raise KeyError(f"unknown fig11 axis {axis!r}")
    return row


def run_fig11(view_counts: Sequence[int] = (10, 6, 4, 2, 1),
              point_counts: Sequence[int] = (128, 112, 96, 80, 64),
              seed: int = 0,
              workers: Optional[int] = None
              ) -> Dict[str, List[Dict[str, float]]]:
    """Legacy entry point: scalability sweeps on NeRF-Synthetic 800x800
    (paper Fig. 11) through the registry.

    Every sweep point is an independent simulator run; they fan out
    over :func:`run_variants` (``workers=None`` autodetects, 1 forces
    single-process) and come back in sweep order, byte-identical
    either way.
    """
    return _experiment("fig11").run(
        RunContext(workers=workers), view_counts=tuple(view_counts),
        point_counts=tuple(point_counts), seed=seed).rows


def _table4_unit(seed: int,
                 workers: Optional[int] = 1) -> List[Dict[str, object]]:
    """Device spec table with our measured Gen-NeRF row alongside the
    paper's reported rows.  ``workers`` shards the one simulated frame
    (bit-identical at any width)."""
    pipeline = CoDesignPipeline()
    sim = pipeline.simulate_accelerator("nerf_synthetic", seed=seed,
                                        workers=workers)
    rows: List[Dict[str, object]] = [{
        "device": "Gen-NeRF (simulated)",
        "sram_mb": 0.8,
        "area_mm2": full_chip_budget()["total"].area_mm2,
        "frequency_ghz": 1.0,
        "dram": "LPDDR4-2400",
        "bandwidth_gb_s": 17.8,
        "technology_nm": 28,
        "typical_power_w": typical_chip_power_w(),
        "typical_fps": sim.fps,
    }]
    for spec in TABLE4_PAPER_ROWS:
        rows.append({
            "device": spec.name + " (paper)",
            "sram_mb": spec.sram_mb,
            "area_mm2": spec.area_mm2,
            "frequency_ghz": spec.frequency_ghz,
            "dram": spec.dram,
            "bandwidth_gb_s": spec.bandwidth_gb_s,
            "technology_nm": spec.technology_nm,
            "typical_power_w": spec.typical_power_w,
            "typical_fps": spec.typical_fps,
        })
    return rows


def run_table4(seed: int = 0) -> List[Dict[str, object]]:
    """Legacy entry point: Table 4 device rows through the registry."""
    return _experiment("table4").run(seed=seed).rows


# ----------------------------------------------------------------------
# Fig. 12 — dataflow / storage ablation
# ----------------------------------------------------------------------
def _fig12_unit(views: int, seed: int,
                workers: Optional[int] = 1) -> Dict[str, Dict[str, float]]:
    """One view count's {variant: latency/traffic row} — independent
    per view count, so the registry fans the sweep out.  ``workers``
    shards each variant's frame simulation within the unit."""
    per_variant = {}
    for name, sim in dataflow_ablation("nerf_synthetic", views,
                                       seed=seed, workers=workers).items():
        per_variant[name] = {
            "data_s": sim.fetch_time_s,
            "compute_s": sim.compute_time_s,
            "total_s": sim.total_time_s,
            "exposed_data_s": sim.data_time_s,
            "utilization": sim.pe_utilization,
            "prefetch_mb": sim.prefetch_bytes / 1e6,
        }
    return per_variant


def run_fig12(view_counts: Sequence[int] = (10, 6, 2), seed: int = 0
              ) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Legacy entry point: {views: {variant: {data_s, compute_s,
    total_s, utilization}}} through the registry."""
    return _experiment("fig12").run(
        view_counts=tuple(view_counts), seed=seed).rows


# ----------------------------------------------------------------------
# Extensions beyond the paper (DESIGN.md "ablation" bullets)
# ----------------------------------------------------------------------
def _coarse_budget_unit(dataset: str, seed: int, step: int,
                        image_scale: float,
                        coarse_counts: Sequence[int],
                        taus: Sequence[float],
                        focused: int) -> List[Dict[str, float]]:
    """PSNR sensitivity to the coarse-pass budget N_c and threshold tau."""
    scene = make_scene(dataset, seed=seed, image_scale=image_scale)
    reference = M.render_target_reference(scene, 384, step)
    rows = []
    for coarse in coarse_counts:
        for tau in taus:
            strategy = OracleStrategy(kind="coarse_focus",
                                      coarse_points=coarse, points=focused,
                                      tau=tau,
                                      white_background=scene.spec.white_background)
            image, stats = oracle_render_image(
                scene.field, scene.target_camera, scene.near, scene.far,
                strategy, step=step)
            rows.append({"coarse_points": float(coarse), "tau": tau,
                         "avg_points": stats["avg_points"],
                         "psnr": M.psnr(image, reference)})
    return rows


def run_coarse_budget_ablation(dataset: str = "nerf_synthetic", seed: int = 3,
                               step: int = 8, image_scale: float = 1 / 8,
                               coarse_counts: Sequence[int] = (4, 8, 16, 32),
                               taus: Sequence[float] = (1e-4, 1e-3, 1e-2),
                               focused: int = 32) -> List[Dict[str, float]]:
    """Legacy entry point: coarse-budget sensitivity through the
    registry."""
    return _experiment("ablation_coarse_budget").run(
        dataset=dataset, seed=seed, step=step, image_scale=image_scale,
        coarse_counts=tuple(coarse_counts), taus=tuple(taus),
        focused=focused).rows


OCCUPANCY_FAMILIES = ("llff", "nerf_synthetic", "deepvoxels", "thicket",
                      "orbit_sparse")


def _occupancy_profile_unit(family: str, seeds: Sequence[int], step: int,
                            image_scale: float, coarse_points: int,
                            focused: int, n_max: int, tau: float
                            ) -> Dict[str, object]:
    """Per-ray valid-sample occupancy of the coarse-then-focus plan.

    Runs the oracle coarse pass (analytic field, no trained weights, so
    the statistic is a property of the *scene family*, not of one
    checkpoint) and reports how full each ray's ``n_max`` slot budget
    ends up — the quantity the sparse fine pass's saving is proportional
    to."""
    from ..geometry.rays import rays_for_image, stratified_depths
    from ..models.sampling import coarse_then_focus_plan
    from ..scenes.render_gt import composite_numpy, field_sigma_color

    edges = np.linspace(0.0, 1.0, 11)
    histogram = np.zeros(10, dtype=np.int64)
    occupancies = []
    empty = saturated = rays = 0
    for seed in seeds:
        kwargs = {"scene_name": "fern"} if family == "llff" else {}
        scene = make_scene(family, seed=int(seed), image_scale=image_scale,
                           num_source_views=6, **kwargs)
        bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                                step=step)
        coarse = stratified_depths(np.random.default_rng(int(seed)),
                                   len(bundle), coarse_points, scene.near,
                                   scene.far, jitter=False)
        sigmas, colors = field_sigma_color(scene.field, bundle, coarse)
        _, weights, _ = composite_numpy(sigmas, colors, coarse, bundle.far)
        plan = coarse_then_focus_plan(coarse, weights, focused, n_max, tau,
                                      scene.near, scene.far,
                                      rng=np.random.default_rng(int(seed)))
        occupancy = plan.counts / n_max
        # Clip exact 1.0 into the last bin (np.histogram already does);
        # the saturated count is tracked separately anyway.
        histogram += np.histogram(occupancy, bins=edges)[0]
        occupancies.append(occupancy)
        empty += int((plan.counts == 0).sum())
        saturated += int((plan.counts == n_max).sum())
        rays += len(bundle)
    occupancy = np.concatenate(occupancies)
    return {"family": family, "rays": int(rays),
            "mean_occupancy": float(occupancy.mean()),
            "empty_fraction": empty / rays,
            "saturated_fraction": saturated / rays,
            "histogram": histogram.tolist()}


def _patch_candidate_unit(seed: int) -> List[Dict[str, float]]:
    """Prefetch traffic and FPS vs the candidate-set size M."""
    from ..hardware.accelerator import AcceleratorConfig, GenNerfAccelerator
    from ..hardware.scheduler import DEFAULT_CANDIDATES, SchedulerConfig
    from .pipeline import hardware_rig

    spec = DATASETS["nerf_synthetic"]
    rig = hardware_rig(spec, 6, seed=seed)
    workload = typical_workload(spec.height, spec.width, 6)
    rows = []
    for m in (1, 2, 4, len(DEFAULT_CANDIDATES)):
        config = AcceleratorConfig(
            name=f"M={m}",
            scheduler=SchedulerConfig(candidates=DEFAULT_CANDIDATES[:m]))
        sim = GenNerfAccelerator(config).simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far)
        rows.append({"num_candidates": float(m), "fps": sim.fps,
                     "prefetch_mb": sim.prefetch_bytes / 1e6,
                     "utilization": sim.pe_utilization})
    return rows


def run_patch_candidate_ablation(seed: int = 0) -> List[Dict[str, float]]:
    """Legacy entry point: candidate-set ablation through the
    registry."""
    return _experiment("ablation_patch_candidates").run(seed=seed).rows
