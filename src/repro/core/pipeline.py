"""End-to-end co-design pipeline: workload -> device -> FPS/latency/energy.

Ties the algorithm side (paper-scale :class:`RenderWorkload`) to the
device models (Gen-NeRF accelerator simulator, GPU rooflines) for every
hardware experiment.  Camera rigs here follow the paper's deployment
model: IBRNet-style systems condition on the source views *closest* to
the novel view (Sec. 3.2 picks S_c closest; IBRNet picks the 10 closest
of its pose library), so novel-to-source baselines are small — which is
precisely what gives point patches their compact source-view footprints
(Property-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.camera import Camera, Intrinsics
from ..geometry.transforms import camera_at
from ..hardware.accelerator import (AcceleratorConfig, FrameSimulation,
                                    GenNerfAccelerator, variant_config)
from ..hardware.gpu_model import (GpuModel, GpuSimulation, JETSON_TX2,
                                  RTX_2080TI)
from ..models.workload import RenderWorkload, typical_workload
from ..scenes.datasets import DATASETS, DatasetSpec


@dataclass
class HardwareRig:
    """A posed novel view plus clustered source views at paper scale."""

    novel: Camera
    sources: List[Camera]
    near: float
    far: float


def hardware_rig(spec: DatasetSpec, num_views: int,
                 seed: int = 0) -> HardwareRig:
    """Build the evaluation rig for one dataset family.

    Sources sit within a ~±18 degree cone around the novel viewpoint
    (the "closest views" regime); forward-facing datasets use a small
    planar offset pattern instead, matching handheld capture.
    """
    rng = np.random.default_rng(seed)
    intr = spec.intrinsics(1.0)
    radius = spec.rig_distance
    if spec.rig == "orbit":
        elevation = np.radians(20.0)
        novel_azimuth = 0.0
        novel_eye = radius * np.array([
            np.cos(elevation) * np.cos(novel_azimuth),
            -np.sin(elevation),
            np.cos(elevation) * np.sin(novel_azimuth)])
        novel = camera_at(novel_eye, np.zeros(3), intr)
        sources = []
        spread = np.radians(18.0)
        for index in range(num_views):
            azimuth = novel_azimuth + spread * (
                (index - (num_views - 1) / 2.0) / max((num_views - 1) / 2.0, 1))
            elev = elevation + np.radians(rng.uniform(-4.0, 4.0))
            eye = radius * np.array([
                np.cos(elev) * np.cos(azimuth),
                -np.sin(elev),
                np.cos(elev) * np.sin(azimuth)])
            sources.append(camera_at(eye, np.zeros(3), intr))
    else:  # forward-facing
        novel = camera_at(np.array([0.0, 0.0, -radius]), np.zeros(3), intr)
        sources = []
        cols = int(np.ceil(np.sqrt(num_views)))
        for index in range(num_views):
            row, col = divmod(index, cols)
            offset = np.array([
                (col - (cols - 1) / 2.0) * 0.35,
                (row - (cols - 1) / 2.0) * 0.25,
                rng.uniform(-0.1, 0.1)])
            sources.append(camera_at(offset + np.array([0, 0, -radius]),
                                     np.zeros(3), intr))
    return HardwareRig(novel=novel, sources=sources, near=spec.near,
                       far=spec.far)


@dataclass
class CoDesignPipeline:
    """Run a rendering workload on the accelerator and GPU baselines."""

    accelerator_config: Optional[AcceleratorConfig] = None

    def __post_init__(self):
        self.accelerator = GenNerfAccelerator(
            self.accelerator_config or AcceleratorConfig())
        self._gpus = {"rtx2080ti": GpuModel(RTX_2080TI),
                      "tx2": GpuModel(JETSON_TX2)}

    # ------------------------------------------------------------------
    def dataset_workload(self, dataset: str, num_views: int = 6,
                         points_per_ray: float = 64) -> RenderWorkload:
        """Delivered Gen-NeRF workload at a dataset's resolution."""
        spec = DATASETS[dataset]
        return typical_workload(height=spec.height, width=spec.width,
                                num_views=num_views,
                                points_per_ray=points_per_ray)

    def simulate_accelerator(self, dataset: str, num_views: int = 6,
                             points_per_ray: float = 64,
                             seed: int = 0,
                             workload: Optional[RenderWorkload] = None,
                             workers: Optional[int] = 1
                             ) -> FrameSimulation:
        spec = DATASETS[dataset]
        rig = hardware_rig(spec, num_views, seed=seed)
        load = workload or self.dataset_workload(dataset, num_views,
                                                 points_per_ray)
        return self.accelerator.simulate_frame(load, rig.novel, rig.sources,
                                               rig.near, rig.far,
                                               workers=workers)

    def simulate_gpu(self, device: str, dataset: str, num_views: int = 6,
                     points_per_ray: float = 64,
                     workload: Optional[RenderWorkload] = None
                     ) -> GpuSimulation:
        load = workload or self.dataset_workload(dataset, num_views,
                                                 points_per_ray)
        return self._gpus[device].simulate_frame(load)

    def fps_comparison(self, dataset: str, num_views: int = 6,
                       points_per_ray: float = 64, seed: int = 0,
                       workers: Optional[int] = 1) -> Dict[str, float]:
        """Fig. 10-style row: accelerator vs both GPUs on one dataset.

        ``workers`` shards the accelerator frame simulation
        (bit-identical at any width; the GPU rooflines are closed-form
        and stay in-process)."""
        accel = self.simulate_accelerator(dataset, num_views, points_per_ray,
                                          seed=seed, workers=workers)
        gpu = self.simulate_gpu("rtx2080ti", dataset, num_views,
                                points_per_ray)
        tx2 = self.simulate_gpu("tx2", dataset, num_views, points_per_ray)
        return {
            "gen_nerf_fps": accel.fps,
            "rtx2080ti_fps": gpu.fps,
            "tx2_fps": tx2.fps,
            "speedup_vs_2080ti": accel.fps / max(gpu.fps, 1e-12),
            "speedup_vs_tx2": accel.fps / max(tx2.fps, 1e-12),
        }


def dataflow_ablation(dataset: str, num_views: int,
                      points_per_ray: float = 64, seed: int = 0,
                      workers: Optional[int] = 1
                      ) -> Dict[str, FrameSimulation]:
    """Fig. 12: ours vs Var-1/2/3 on one dataset/view-count point.

    ``workers`` shards each variant's frame simulation over the
    intra-frame pool; variant results are bit-identical at any width,
    so the committed ablation artefacts do not depend on it."""
    spec = DATASETS[dataset]
    rig = hardware_rig(spec, num_views, seed=seed)
    workload = typical_workload(height=spec.height, width=spec.width,
                                num_views=num_views,
                                points_per_ray=points_per_ray)
    results: Dict[str, FrameSimulation] = {}
    for name in ("ours", "var1", "var2", "var3"):
        accelerator = GenNerfAccelerator(variant_config(name))
        results[name] = accelerator.simulate_frame(
            workload, rig.novel, rig.sources, rig.near, rig.far,
            workers=workers)
    return results
