"""Plain-text table and series formatting for the experiment harness.

Every benchmark regenerates its paper table/figure as text; these
helpers keep the output layout consistent (fixed-width columns, one
header row, optional paper-reference column) so EXPERIMENTS.md can be
assembled straight from bench logs.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Union

Cell = Union[str, float, int]


def atomic_write(path: str, writer, mode: str = "w") -> str:
    """Write a file atomically: temp file + ``os.replace``.

    ``writer(handle)`` produces the content.  A crashed or concurrent
    run can therefore never leave a truncated file on disk — readers
    see either the old complete file or the new complete one.  The
    temp file lives in the destination directory so the rename stays
    on one filesystem; on any failure it is removed and the previous
    file survives intact.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as handle:
            writer(handle)
        # mkstemp creates 0600 files; restore the umask-derived mode a
        # plain open() would have used, so committed artefacts and
        # shared cache directories stay group/other readable.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp, 0o666 & ~umask)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def write_artifact(path: str, text: str) -> str:
    """Write artefact text atomically (see :func:`atomic_write`), so a
    crashed or parallel run can never leave a truncated
    ``benchmarks/results/*.txt`` on disk."""
    return atomic_write(path, lambda handle: handle.write(text))


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 10 ** (-precision):
            return f"{value:.3g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 3) -> str:
    """Render rows as a fixed-width text table."""
    text_rows = [[_format_cell(cell, precision) for cell in row]
                 for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_series(name: str, xs: Sequence[Cell], ys: Sequence[Cell],
                  x_label: str = "x", y_label: str = "y",
                  precision: int = 3) -> str:
    """Render an (x, y) series — one figure curve — as aligned text."""
    rows = list(zip(xs, ys))
    return format_table([x_label, y_label], rows, title=name,
                        precision=precision)


def ratio_note(measured: float, paper: float, label: str = "") -> str:
    """One-line paper-vs-measured comparison used in bench output."""
    if paper == 0:
        return f"{label}: measured {measured:.4g} (paper N/A)"
    return (f"{label}: measured {measured:.4g} vs paper {paper:.4g} "
            f"(ratio {measured / paper:.2f}x)")
