"""Structured event logging for the repro runtime.

Every fallback, retry, quarantine, and degradation in the execution
layer emits one structured *event* through the standard :mod:`logging`
machinery instead of a bare ``print(..., file=sys.stderr)``: tests
assert on events with ``caplog``, long harness runs stay greppable, and
the ``REPRO_LOG`` knob turns the noise up or down without touching
code.

Knob: ``REPRO_LOG`` sets the stderr handler's threshold — a level name
(``debug`` / ``info`` / ``warning`` / ``error``) or an off-value
(``off`` / ``none`` / ``silent`` / ``0`` / ``disabled``) to silence the
handler entirely.  Unset defaults to ``warning``: fallbacks and
degradations are visible, per-job progress (info) is not.  A malformed
value warns once and falls back to the default, mirroring the lenient
``REPRO_WORKERS`` parsing.  The ``repro`` logger itself stays at
``NOTSET`` with propagation on, so ``caplog`` and user-installed
handlers see every record regardless of the knob.

Event records carry the event name as ``record.repro_event`` and the
keyword fields as ``record.repro_fields`` (a dict), with a flat
``event key=value ...`` message — machine-parseable either way.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

ENV_KNOB = "REPRO_LOG"
ROOT_NAME = "repro"
DEFAULT_LEVEL = logging.WARNING

_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
           "warning": logging.WARNING, "warn": logging.WARNING,
           "error": logging.ERROR}
_OFF_VALUES = {"off", "none", "silent", "0", "disabled"}

# The one stderr handler this module owns (None until first use).
_HANDLER: Optional[logging.Handler] = None


def parse_level(value: Optional[str]) -> Optional[int]:
    """Resolve a ``REPRO_LOG`` value to a logging level.

    ``None``/empty/whitespace -> the default; an off-value -> ``None``
    (silence the handler); anything unrecognised warns once on stderr
    (the logger is what's being configured, so it can't carry the
    warning) and falls back to the default.
    """
    if value is None or not str(value).strip():
        return DEFAULT_LEVEL
    text = str(value).strip().lower()
    if text in _OFF_VALUES:
        return None
    level = _LEVELS.get(text)
    if level is None:
        print(f"warning: ignoring unknown {ENV_KNOB}={value!r} "
              f"(choose from {sorted(_LEVELS)} or 'off')",
              file=sys.stderr)
        return DEFAULT_LEVEL
    return level


def configure(value: Optional[str] = None) -> Optional[logging.Handler]:
    """(Re)configure the stderr handler from ``value`` (default: the
    ``REPRO_LOG`` env knob).  Idempotent; returns the handler, or
    ``None`` when the knob silenced it."""
    global _HANDLER
    root = logging.getLogger(ROOT_NAME)
    if _HANDLER is not None:
        root.removeHandler(_HANDLER)
        _HANDLER = None
    level = parse_level(value if value is not None
                        else os.environ.get(ENV_KNOB))
    if level is None:
        # Silenced: a NullHandler keeps logging from printing its
        # "no handlers found" complaint; caplog still sees records.
        _HANDLER = logging.NullHandler()
    else:
        _HANDLER = logging.StreamHandler(sys.stderr)
        _HANDLER.setLevel(level)
        _HANDLER.setFormatter(
            logging.Formatter("%(name)s %(levelname)s: %(message)s"))
    # Level lives on the handler, not the logger: caplog (which
    # attaches its own handler upstream) must see every record even
    # when the stderr handler is silenced.
    root.setLevel(logging.NOTSET)
    root.addHandler(_HANDLER)
    return None if isinstance(_HANDLER, logging.NullHandler) else _HANDLER


def get_logger(name: str = "") -> logging.Logger:
    """The logger for one repro subsystem (``repro.<name>``), with the
    shared stderr handler installed on the ``repro`` root."""
    if _HANDLER is None:
        configure()
    return logging.getLogger(f"{ROOT_NAME}.{name}" if name else ROOT_NAME)


def event(logger: logging.Logger, name: str, level: int = logging.WARNING,
          **fields) -> None:
    """Emit one structured event: ``name key=value ...``.

    ``name`` is a stable dotted identifier (``frame_pool.task_timeout``,
    ``batch.job_quarantined``); ``fields`` are the event's data, kept in
    call order in the message and attached whole to the record as
    ``repro_fields`` for handlers that want structure.
    """
    message = " ".join(
        [name] + [f"{key}={value!r}" for key, value in fields.items()])
    logger.log(level, message,
               extra={"repro_event": name, "repro_fields": fields})


def events_named(records, name: str):
    """The ``caplog.records`` entries carrying event ``name`` — the
    test-side accessor matching :func:`event`."""
    return [record for record in records
            if getattr(record, "repro_event", None) == name]
