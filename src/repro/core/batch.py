"""Fault-isolated bulk ingestion: ``python -m repro batch <jobs_dir>``.

A production system ingests jobs it didn't author.  This module runs a
directory of JSON job specs through the experiment registry with the
per-file try/quarantine/continue discipline: one malformed, crashing,
or hostile spec can never kill the fleet — it is quarantined (spec +
traceback report copied to ``errors/``) and the run continues.

Job spec format (one ``.json`` file per job)::

    {
      "experiment": "table1",            // required: a registered name
      "overrides":  {"seed": 7},         // optional: parameter overrides
      "seed":       7,                   // optional: RunContext seed
      "scale":      0.5,                 // optional: work multiplier
      "artefact":   "table1_smoke"       // optional: output stem
                                         //   (default: the file stem)
    }

Design points:

* **Validate before compute.**  Every spec is parsed and checked
  against the registry (experiment exists, override keys are declared
  parameters, field types are sane) *before any job runs*; malformed
  specs are quarantined up front, so a typo in job 40 surfaces in
  seconds, not after 39 jobs' worth of compute.
* **Per-job quarantine.**  A job that fails at runtime lands in
  ``errors/`` — a copy of the spec plus a ``<stem>.report.txt`` with
  the full traceback — and the loop moves on.  Only
  ``KeyboardInterrupt`` / ``SystemExit`` abort the run (that's the
  operator, not the job).
* **Resumability.**  Artefacts are written atomically
  (:func:`repro.core.reporting.write_artifact`), so a killed run
  leaves only complete artefacts; on re-invocation, jobs whose
  artefact already exists are skipped.  Artefact text is byte-identical
  to ``python -m repro run <experiment> --write`` for the same
  parameters — the batch layer adds isolation, not drift.
* **Observability.**  Every job emits a structured
  :mod:`repro.core.log` event (``batch.job_completed`` /
  ``batch.job_skipped`` / ``batch.job_quarantined``) and the run ends
  with a deterministic ``batch_summary.txt`` artefact (per-job status
  table + counts) under the output directory.
"""

from __future__ import annotations

import json
import logging
import os
import re
import shutil
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import faults, log, reporting
from .context import RunContext
from .registry import get_experiment
from .scene_cache import exported_cache_knob

_LOG = log.get_logger("batch")

JOB_SUFFIX = ".json"
ERRORS_DIRNAME = "errors"
SUMMARY_STEM = "batch_summary"

_SPEC_FIELDS = ("experiment", "overrides", "seed", "scale", "artefact")
_STEM_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class BatchSpecError(ValueError):
    """A job spec that must be rejected before any compute."""


@dataclass
class JobReport:
    """Outcome of one ingested job."""

    stem: str
    spec_path: str
    status: str                  # "completed" | "skipped" | "quarantined"
    experiment: str = "?"
    detail: str = ""
    artefact_path: Optional[str] = None


@dataclass
class BatchSummary:
    """Outcome of one ``run_batch`` invocation."""

    jobs_dir: str
    out_dir: str
    errors_dir: str
    reports: List[JobReport] = field(default_factory=list)
    summary_path: Optional[str] = None

    def count(self, status: str) -> int:
        return sum(1 for report in self.reports
                   if report.status == status)

    @property
    def completed(self) -> int:
        return self.count("completed")

    @property
    def skipped(self) -> int:
        return self.count("skipped")

    @property
    def quarantined(self) -> int:
        return self.count("quarantined")

    def render(self) -> str:
        """The deterministic summary artefact text (statuses only — no
        timings, so a resumed run's summary depends only on the job
        outcomes)."""
        rows = [[report.stem, report.experiment, report.status,
                 report.detail] for report in self.reports]
        table = reporting.format_table(
            ["Job", "Experiment", "Status", "Detail"], rows,
            title=f"Batch ingestion — {len(self.reports)} job(s) from "
                  f"{os.path.basename(os.path.abspath(self.jobs_dir))}/")
        counts = (f"completed {self.completed}  skipped {self.skipped}  "
                  f"quarantined {self.quarantined}")
        return table + "\n\n" + counts


# ----------------------------------------------------------------------
# Spec validation (registry-driven, before any compute)
# ----------------------------------------------------------------------
def validate_spec(spec: object, path: str
                  ) -> Tuple[str, Dict, Dict, Optional[str]]:
    """Check one parsed job spec against the registry.

    Returns ``(experiment_name, overrides, context_fields, artefact)``
    or raises :class:`BatchSpecError` with a message precise enough to
    fix the spec from the quarantine report alone.
    """
    if not isinstance(spec, dict):
        raise BatchSpecError(
            f"job spec must be a JSON object, got {type(spec).__name__}")
    unknown = sorted(set(spec) - set(_SPEC_FIELDS))
    if unknown:
        raise BatchSpecError(
            f"unknown spec field(s) {unknown}; valid: {_SPEC_FIELDS}")
    name = spec.get("experiment")
    if not isinstance(name, str) or not name:
        raise BatchSpecError("spec needs an 'experiment' name (string)")
    try:
        experiment = get_experiment(name)
    except KeyError as error:
        raise BatchSpecError(str(error.args[0])) from None

    overrides = spec.get("overrides", {})
    if not isinstance(overrides, dict):
        raise BatchSpecError("'overrides' must be a JSON object")
    bad_keys = sorted(set(overrides) - set(experiment.params))
    if bad_keys:
        raise BatchSpecError(
            f"unknown parameter(s) {bad_keys} for experiment {name!r}; "
            f"valid: {sorted(experiment.params)}")

    context_fields: Dict = {}
    seed = spec.get("seed")
    if seed is not None:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise BatchSpecError(f"'seed' must be an integer, got {seed!r}")
        context_fields["seed"] = seed
    scale = spec.get("scale")
    if scale is not None:
        if isinstance(scale, bool) or \
                not isinstance(scale, (int, float)) or scale <= 0:
            raise BatchSpecError(
                f"'scale' must be a positive number, got {scale!r}")
        context_fields["scale"] = float(scale)
    artefact = spec.get("artefact")
    if artefact is not None and (not isinstance(artefact, str)
                                 or not _STEM_RE.match(artefact)):
        raise BatchSpecError(
            f"'artefact' must be a plain file stem (letters, digits, "
            f"'._-'), got {artefact!r}")
    return name, dict(overrides), context_fields, artefact


def _quarantine(report: JobReport, errors_dir: str, error: BaseException
                ) -> None:
    """Copy the failed spec + a traceback report into ``errors/`` and
    mark the report quarantined.  The run continues."""
    os.makedirs(errors_dir, exist_ok=True)
    try:
        shutil.copy2(report.spec_path,
                     os.path.join(errors_dir,
                                  os.path.basename(report.spec_path)))
    except OSError:
        pass                     # the report below still records the path
    report.status = "quarantined"
    report.detail = f"{type(error).__name__}: {error}"
    report_path = os.path.join(errors_dir, f"{report.stem}.report.txt")
    reporting.write_artifact(
        report_path,
        f"job:        {report.stem}\n"
        f"spec:       {report.spec_path}\n"
        f"experiment: {report.experiment}\n"
        f"error:      {report.detail}\n\n"
        f"{traceback.format_exc()}")
    log.event(_LOG, "batch.job_quarantined", job=report.stem,
              experiment=report.experiment, error=report.detail,
              report=report_path)


# ----------------------------------------------------------------------
# Ingestion
# ----------------------------------------------------------------------
def discover_jobs(jobs_dir: str) -> List[str]:
    """The job spec files of ``jobs_dir``: every ``*.json``, sorted by
    name so runs (and resumes) process jobs in a stable order."""
    if not os.path.isdir(jobs_dir):
        raise FileNotFoundError(f"jobs directory not found: {jobs_dir}")
    return [os.path.join(jobs_dir, name)
            for name in sorted(os.listdir(jobs_dir))
            if name.endswith(JOB_SUFFIX)]


def run_batch(jobs_dir: str, ctx: Optional[RunContext] = None,
              out_dir: Optional[str] = None,
              errors_dir: Optional[str] = None) -> BatchSummary:
    """Ingest every job spec in ``jobs_dir`` with per-job isolation.

    ``out_dir`` (default ``<jobs_dir>/out``) receives one
    ``<stem>.txt`` artefact per completed job plus the
    ``batch_summary.txt`` report; ``errors_dir`` (default
    ``<out_dir>/errors``) receives quarantined specs and their
    traceback reports.  ``ctx`` supplies the run-wide knobs (workers,
    cache dir, timeout/retry budget) and the *default* seed/scale —
    a spec's own ``seed``/``scale`` fields win for that job.
    """
    ctx = ctx or RunContext()
    out_dir = out_dir or os.path.join(jobs_dir, "out")
    errors_dir = errors_dir or os.path.join(out_dir, ERRORS_DIRNAME)
    plan = faults.active_plan()

    paths = discover_jobs(jobs_dir)
    summary = BatchSummary(jobs_dir=jobs_dir, out_dir=out_dir,
                           errors_dir=errors_dir)
    log.event(_LOG, "batch.start", level=logging.INFO, jobs=len(paths),
              jobs_dir=jobs_dir, out_dir=out_dir)

    # Phase 1 — parse + validate every spec before any compute.
    runnable: List[Tuple[JobReport, str, Dict, Dict, str]] = []
    for path in paths:
        stem = os.path.splitext(os.path.basename(path))[0]
        report = JobReport(stem=stem, spec_path=path, status="pending")
        summary.reports.append(report)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
            name, overrides, context_fields, artefact = \
                validate_spec(spec, path)
        except (OSError, ValueError) as error:   # json errors are Value
            _quarantine(report, errors_dir, error)
            continue
        report.experiment = name
        runnable.append((report, name, overrides, context_fields,
                         artefact or stem))

    # Phase 2 — run the valid jobs, newest failure quarantined, loop
    # continues.  Artefact-exists jobs are skipped (resume path).
    with exported_cache_knob(ctx.cache_dir):
        for index, (report, name, overrides, context_fields,
                    artefact_stem) in enumerate(runnable):
            artefact_path = os.path.join(out_dir, f"{artefact_stem}.txt")
            report.artefact_path = artefact_path
            if os.path.exists(artefact_path):
                report.status = "skipped"
                report.detail = f"{artefact_stem}.txt exists"
                log.event(_LOG, "batch.job_skipped", level=logging.INFO,
                          job=report.stem, artefact=artefact_path)
                continue
            if plan is not None and plan.job_fault(report.stem):
                kind = plan.job_fault(report.stem)
                if kind == "interrupt":
                    # Simulates the operator killing the run mid-flight
                    # (resume tests): propagate, never quarantine.
                    raise KeyboardInterrupt(
                        f"injected interrupt at job {report.stem}")
            log.event(_LOG, "batch.job_start", level=logging.INFO,
                      job=report.stem, experiment=name,
                      position=f"{index + 1}/{len(runnable)}")
            try:
                if plan is not None and \
                        plan.job_fault(report.stem) == "error":
                    raise RuntimeError(
                        f"injected job error at {report.stem}")
                job_ctx = _job_context(ctx, out_dir, context_fields)
                result = get_experiment(name).run(job_ctx, **overrides)
                reporting.write_artifact(artefact_path, result.text + "\n")
            except (KeyboardInterrupt, SystemExit):
                raise            # the operator, not the job
            except BaseException as error:
                _quarantine(report, errors_dir, error)
                continue
            report.status = "completed"
            report.detail = f"{artefact_stem}.txt"
            log.event(_LOG, "batch.job_completed", level=logging.INFO,
                      job=report.stem, artefact=artefact_path)

    summary.summary_path = os.path.join(out_dir, f"{SUMMARY_STEM}.txt")
    reporting.write_artifact(summary.summary_path, summary.render() + "\n")
    log.event(_LOG, "batch.done", level=logging.INFO,
              completed=summary.completed, skipped=summary.skipped,
              quarantined=summary.quarantined,
              summary=summary.summary_path)
    return summary


def _job_context(ctx: RunContext, out_dir: str,
                 context_fields: Dict) -> RunContext:
    """The per-job :class:`RunContext`: batch-wide knobs, with the
    spec's own seed/scale taking precedence."""
    return RunContext(
        seed=context_fields.get("seed", ctx.seed),
        scale=context_fields.get("scale", ctx.scale),
        workers=ctx.workers, cache_dir=ctx.cache_dir,
        results_dir=out_dir, task_timeout=ctx.task_timeout,
        retries=ctx.retries)
