"""Micro-benchmarks of the reproduction's own hot paths.

These are genuine pytest-benchmark timings (multiple rounds) of the
simulator primitives, so regressions in the Python implementation
itself are visible — distinct from the paper-figure harnesses, which
run once and check shapes.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.pipeline import hardware_rig
from repro.hardware import GreedyPatchScheduler, SchedulerConfig
from repro.models.oracle import OracleStrategy, oracle_render
from repro.geometry import rays_for_image
from repro.scenes import make_scene
from repro.scenes.datasets import DatasetSpec

SMALL_SPEC = DatasetSpec("small", width=256, height=192, fov_x_deg=50.0,
                         near=2.0, far=6.0, rig="orbit", rig_distance=4.0)


def test_bench_scheduler_plan(benchmark):
    """Greedy partition of a 256x192 frame with 4 views."""
    rig = hardware_rig(SMALL_SPEC, num_views=4)
    scheduler = GreedyPatchScheduler(SchedulerConfig())
    plan = benchmark(scheduler.plan_frame, rig.novel, rig.sources,
                     rig.near, rig.far)
    assert plan.num_patches > 0


def test_bench_oracle_coarse_focus(benchmark):
    """Coarse-then-focus oracle rendering of 1k rays."""
    scene = make_scene("nerf_synthetic", seed=3, image_scale=1 / 8)
    bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                            step=3)
    strategy = OracleStrategy(kind="coarse_focus", coarse_points=8,
                              points=16, white_background=True)
    pixels, _ = benchmark(oracle_render, scene.field, bundle, strategy)
    assert np.isfinite(pixels).all()


def test_bench_autograd_training_step(benchmark):
    """One Adam step through a 4-layer MLP on a 256-row batch."""
    rng = np.random.default_rng(0)
    model = nn.MLP(32, [64, 64, 64], 3, rng=rng)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    data = rng.standard_normal((256, 32)).astype(np.float32)
    target = rng.standard_normal((256, 3)).astype(np.float32)

    def step():
        optimizer.zero_grad()
        loss = nn.functional.mse_loss(model(nn.Tensor(data)), target)
        loss.backward()
        optimizer.step()
        return loss.item()

    value = benchmark(step)
    assert np.isfinite(value)
