"""Regenerate paper Table 1: per-module area and power (28 nm @ 1 GHz),
through the experiment registry."""

from repro.core.registry import get_experiment


def test_table1_area_power(benchmark, report):
    experiment = get_experiment("table1")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)

    for name, area, paper_area, power, paper_power in result.rows:
        assert abs(area - paper_area) <= 0.10 * paper_area
        assert abs(power - paper_power) <= 0.10 * paper_power
