"""Regenerate paper Table 1: per-module area and power (28 nm @ 1 GHz)."""

from repro.core import format_table, run_table1


def test_table1_area_power(benchmark, report):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    text = format_table(
        ["Module", "Area mm^2", "Paper", "Power mW", "Paper"],
        rows, title="Table 1 — Gen-NeRF hardware module area/power")
    report("table1_area_power", text)

    for name, area, paper_area, power, paper_power in rows:
        assert abs(area - paper_area) <= 0.10 * paper_area
        assert abs(power - paper_power) <= 0.10 * paper_power
