"""Extension ablation (DESIGN.md): sensitivity of rendering quality to
the coarse-pass budget N_c and the critical-point threshold tau.

Not a paper table — it probes the design choice behind Sec. 3.2's
"lightweight" coarse pass: how small can N_c get before the sampling
PDF degrades?"""

from repro.core import format_table, run_coarse_budget_ablation


def test_ablation_coarse_budget(benchmark, report):
    rows = benchmark.pedantic(run_coarse_budget_ablation, rounds=1,
                              iterations=1)
    table = [[row["coarse_points"], row["tau"], row["avg_points"],
              row["psnr"]] for row in rows]
    text = format_table(["N_c", "tau", "avg points", "PSNR"],
                        table, title="Ablation — coarse budget vs quality")
    report("ablation_coarse_budget", text)

    by_nc = {}
    for row in rows:
        by_nc.setdefault(row["coarse_points"], []).append(row["psnr"])
    best = {nc: max(vals) for nc, vals in by_nc.items()}
    # Even N_c = 4 produces a usable PDF; quality roughly saturates by
    # N_c = 16 (the paper's Table 2 choice).
    assert best[4.0] > 25
    assert best[16.0] > best[4.0] - 3.0
