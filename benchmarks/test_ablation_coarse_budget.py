"""Extension ablation (DESIGN.md): sensitivity of rendering quality to
the coarse-pass budget N_c and the critical-point threshold tau —
through the experiment registry.

Not a paper table — it probes the design choice behind Sec. 3.2's
"lightweight" coarse pass: how small can N_c get before the sampling
PDF degrades?"""

from repro.core.registry import get_experiment


def test_ablation_coarse_budget(benchmark, report):
    experiment = get_experiment("ablation_coarse_budget")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    rows = result.rows

    by_nc = {}
    for row in rows:
        by_nc.setdefault(row["coarse_points"], []).append(row["psnr"])
    best = {nc: max(vals) for nc, vals in by_nc.items()}
    # Even N_c = 4 produces a usable PDF; quality roughly saturates by
    # N_c = 16 (the paper's Table 2 choice).
    assert best[4.0] > 25
    assert best[16.0] > best[4.0] - 3.0
