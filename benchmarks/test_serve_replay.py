"""Regenerate the ``serve_replay`` artefact: deterministic traffic
replay through the serving scheduler (``repro.core.serve``) at several
concurrency levels plus a burst that overruns the queue limit — through
the experiment registry.  Every row is deterministic in the trace seed
and byte-identical at any worker width, so the shape assertions here
double as the committed artefact's regeneration gate."""

import os

from repro.core.registry import get_experiment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def test_serve_replay(benchmark, report):
    experiment = get_experiment("serve_replay")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    rows = result.rows
    params = experiment.params

    # One row per open-loop level plus the burst stressor.
    assert len(rows) == len(params["levels"]) + 1
    open_rows = [row for row in rows if row["mode"] == "open"]
    burst_rows = [row for row in rows if row["mode"] == "burst"]
    assert [row["level"] for row in open_rows] == list(params["levels"])
    assert len(burst_rows) == 1

    for row in rows:
        # Accounting: every submitted request is answered exactly once.
        assert row["submitted_total"] \
            == row["completed"] + row["shed"] + row["failed"]
        assert row["failed"] == 0
        assert row["p99_latency_ticks"] >= row["p50_latency_ticks"]
        assert 0.0 < row["batch_occupancy"] <= 1.0
        assert row["rays_per_dispatch"] <= params["max_batch"]
        # The byte-stability witness is a committed 8-hex crc32.
        assert len(row["pixels_crc32"]) == 8
        int(row["pixels_crc32"], 16)

    # Open-loop levels inside the queue limit shed nothing.
    for row in open_rows:
        if row["level"] <= params["queue_limit"]:
            assert row["shed"] == 0

    # Coalescing really happens once there is concurrency to coalesce.
    assert open_rows[-1]["merged_rays"] > 0
    assert open_rows[-1]["rays_per_dispatch"] \
        > open_rows[0]["rays_per_dispatch"]

    # The burst overruns the queue: exactly the overflow is shed and
    # the survivors still complete.
    burst = burst_rows[0]
    assert burst["shed"] \
        == burst["submitted_total"] - params["queue_limit"]
    assert burst["completed"] == params["queue_limit"]

    # Regeneration gate: the run we just did matches the committed
    # artefact byte for byte (the ``report`` fixture rewrote it, so
    # compare against the rendered text directly).
    committed = open(os.path.join(
        RESULTS_DIR, f"{experiment.artefact}.txt")).read()
    assert result.text + "\n" == committed
