"""Paper-figure harnesses (pytest) and the hot-path perf harness.

``python -m benchmarks.harness`` (or ``make bench``) times the
simulator's hot paths against the seed loop implementations and writes
``BENCH_hotpaths.json`` at the repo root; see ``benchmarks/harness.py``.
"""
