"""Extension ablation (DESIGN.md): effect of the candidate-shape menu
size M on the greedy partition's traffic and throughput — through the
experiment registry.

Probes Sec. 4.3's design choice of a small predefined candidate set:
how much does the greedy chooser gain from more shape options, and does
the run-time scheduling stay hidden?"""

from repro.core.registry import get_experiment


def test_ablation_patch_candidates(benchmark, report):
    experiment = get_experiment("ablation_patch_candidates")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    rows = result.rows

    first = rows[0]
    last = rows[-1]
    # More candidates never hurt traffic (greedy is monotone in menu).
    assert last["prefetch_mb"] <= first["prefetch_mb"] * 1.01
    assert last["fps"] >= first["fps"] * 0.95
