"""Extension ablation (DESIGN.md): effect of the candidate-shape menu
size M on the greedy partition's traffic and throughput.

Probes Sec. 4.3's design choice of a small predefined candidate set:
how much does the greedy chooser gain from more shape options, and does
the run-time scheduling stay hidden?"""

from repro.core import format_table, run_patch_candidate_ablation


def test_ablation_patch_candidates(benchmark, report):
    rows = benchmark.pedantic(run_patch_candidate_ablation, rounds=1,
                              iterations=1)
    table = [[row["num_candidates"], row["fps"], row["prefetch_mb"],
              row["utilization"]] for row in rows]
    text = format_table(["M", "FPS", "Prefetch MB", "PE util"],
                        table, title="Ablation — candidate-set size")
    report("ablation_patch_candidates", text)

    first = rows[0]
    last = rows[-1]
    # More candidates never hurt traffic (greedy is monotone in menu).
    assert last["prefetch_mb"] <= first["prefetch_mb"] * 1.01
    assert last["fps"] >= first["fps"] * 0.95
