"""Regenerate paper Table 3: per-scene finetuning — IBRNet vs Gen-NeRF
at 4 and 10 source views on the four LLFF scene analogues.

The paper's claim: Gen-NeRF trims IBRNet's complexity by >17x while
staying within ~0.4-0.9 dB after finetuning.  Absolute PSNRs here come
from short numpy training; the complexity ratio and the bounded quality
gap are the asserted shape.
"""

import numpy as np

from repro.core import format_table, run_table3

PAPER_MFLOPS = {("IBRNet", 4): 6.31, ("Gen-NeRF", 4): 0.368,
                ("IBRNet", 10): 13.94, ("Gen-NeRF", 10): 0.803}


def test_table3_finetune(benchmark, report):
    rows = benchmark.pedantic(
        run_table3, kwargs=dict(train_steps=260, finetune_steps=60,
                                eval_step=6, image_scale=1 / 10,
                                num_points=20),
        rounds=1, iterations=1)

    table = []
    for row in rows:
        cells = [row.method, row.mflops_per_pixel]
        for scene in ("fern", "fortress", "horns", "trex"):
            psnr, lpips = row.per_scene[scene]
            cells.append(f"{psnr:.2f}/{lpips:.3f}")
        table.append(cells)
    text = format_table(
        ["Method", "MFLOPs/px", "fern", "fortress", "horns", "trex"],
        table, title="Table 3 — per-scene finetuning (PSNR/LPIPS-proxy)")
    report("table3_finetune", text)

    def mean_psnr(row):
        return float(np.mean([p for p, _ in row.per_scene.values()]))

    by_key = {}
    for row in rows:
        name, views = row.method.split(" (")
        by_key[(name, int(views.split()[0]))] = row

    for views in (4, 10):
        ibrnet = by_key[("IBRNet", views)]
        gen = by_key[("Gen-NeRF", views)]
        # Complexity: >17x FLOPs reduction (paper Sec. 5.2).
        assert ibrnet.mflops_per_pixel / gen.mflops_per_pixel > 15
        # Quality: Gen-NeRF within ~2.5 dB of IBRNet after finetuning
        # (paper: within 0.9 dB at 250K steps; short runs are noisier).
        assert mean_psnr(gen) > mean_psnr(ibrnet) - 2.5
        # FLOPs columns match the paper's Table 3 values.
        for name in ("IBRNet", "Gen-NeRF"):
            paper = PAPER_MFLOPS[(name, views)]
            measured = by_key[(name, views)].mflops_per_pixel
            assert abs(measured - paper) <= 0.16 * paper
