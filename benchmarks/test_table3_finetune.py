"""Regenerate paper Table 3: per-scene finetuning — IBRNet vs Gen-NeRF
at 4 and 10 source views on the four LLFF scene analogues — through the
experiment registry (the registry's ``table3`` defaults are this
committed artefact's configuration).

The paper's claim: Gen-NeRF trims IBRNet's complexity by >17x while
staying within ~0.4-0.9 dB after finetuning.  Absolute PSNRs here come
from short numpy training; the complexity ratio and the bounded quality
gap are the asserted shape.
"""

import numpy as np

from repro.core.registry import PAPER_TABLE3_MFLOPS, get_experiment


def test_table3_finetune(benchmark, report):
    experiment = get_experiment("table3")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    rows = result.rows

    def mean_psnr(row):
        return float(np.mean([p for p, _ in row.per_scene.values()]))

    by_key = {}
    for row in rows:
        name, views = row.method.split(" (")
        by_key[(name, int(views.split()[0]))] = row

    for views in (4, 10):
        ibrnet = by_key[("IBRNet", views)]
        gen = by_key[("Gen-NeRF", views)]
        # Complexity: >17x FLOPs reduction (paper Sec. 5.2).
        assert ibrnet.mflops_per_pixel / gen.mflops_per_pixel > 15
        # Quality: Gen-NeRF within ~2.5 dB of IBRNet after finetuning
        # (paper: within 0.9 dB at 250K steps; short runs are noisier).
        assert mean_psnr(gen) > mean_psnr(ibrnet) - 2.5
        # FLOPs columns match the paper's Table 3 values.
        for name in ("IBRNet", "Gen-NeRF"):
            paper = PAPER_TABLE3_MFLOPS[(name, views)]
            measured = by_key[(name, views)].mflops_per_pixel
            assert abs(measured - paper) <= 0.16 * paper
