"""Regenerate paper Table 4: device specification and typical-throughput
comparison (Gen-NeRF vs ICARUS vs Jetson TX2 vs RTX 2080Ti) — through
the experiment registry (the simulated-vs-paper ratio note is part of
the registry's rendered artefact)."""

from repro.core.registry import get_experiment


def test_table4_devices(benchmark, report):
    experiment = get_experiment("table4")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    rows = result.rows

    simulated = rows[0]
    paper_gen_nerf = next(r for r in rows if r["device"] == "Gen-NeRF (paper)")
    icarus = next(r for r in rows if "ICARUS" in r["device"])

    # Our simulated row reproduces the paper's headline comparisons:
    assert abs(simulated["typical_fps"] - paper_gen_nerf["typical_fps"]) \
        <= 0.25 * paper_gen_nerf["typical_fps"]
    assert abs(simulated["typical_power_w"]
               - paper_gen_nerf["typical_power_w"]) <= 1.0
    assert abs(simulated["area_mm2"] - paper_gen_nerf["area_mm2"]) <= 1.8
    # ">1000x FPS over ICARUS under a comparable area" (Sec. 5.3).
    assert simulated["typical_fps"] / icarus["typical_fps"] > 1000
    assert simulated["area_mm2"] < 1.3 * icarus["area_mm2"]
