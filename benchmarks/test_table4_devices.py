"""Regenerate paper Table 4: device specification and typical-throughput
comparison (Gen-NeRF vs ICARUS vs Jetson TX2 vs RTX 2080Ti)."""

from repro.core import format_table, ratio_note, run_table4


def test_table4_devices(benchmark, report):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    table = [[r["device"], r["sram_mb"], r["area_mm2"], r["frequency_ghz"],
              r["dram"], r["bandwidth_gb_s"], r["technology_nm"],
              r["typical_power_w"], r["typical_fps"]] for r in rows]
    text = format_table(
        ["Device", "SRAM MB", "Area mm^2", "GHz", "DRAM", "GB/s", "nm",
         "Power W", "Typical FPS"],
        table, title="Table 4 — accelerator and device comparison")

    simulated = rows[0]
    paper_gen_nerf = next(r for r in rows if r["device"] == "Gen-NeRF (paper)")
    icarus = next(r for r in rows if "ICARUS" in r["device"])
    text += "\n\n" + ratio_note(simulated["typical_fps"],
                                paper_gen_nerf["typical_fps"],
                                "simulated vs paper typical FPS")
    report("table4_devices", text)

    # Our simulated row reproduces the paper's headline comparisons:
    assert abs(simulated["typical_fps"] - paper_gen_nerf["typical_fps"]) \
        <= 0.25 * paper_gen_nerf["typical_fps"]
    assert abs(simulated["typical_power_w"]
               - paper_gen_nerf["typical_power_w"]) <= 1.0
    assert abs(simulated["area_mm2"] - paper_gen_nerf["area_mm2"]) <= 1.8
    # ">1000x FPS over ICARUS under a comparable area" (Sec. 5.3).
    assert simulated["typical_fps"] / icarus["typical_fps"] > 1000
    assert simulated["area_mm2"] < 1.3 * icarus["area_mm2"]
