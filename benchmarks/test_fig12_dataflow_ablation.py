"""Regenerate paper Fig. 12: latency breakdown (data movement vs compute)
and PE utilisation for the dataflow/storage ablation — ours vs Var-1
(fixed slicing), Var-2 (row-major storage), Var-3 (view-wise storage) —
at {10, 6, 2} source views on NeRF-Synthetic 800x800."""

from repro.core import format_table, run_fig12, stacked_latency_chart


def test_fig12_dataflow_ablation(benchmark, report):
    results = benchmark.pedantic(run_fig12, rounds=1, iterations=1)

    rows = []
    for views, variants in results.items():
        for name, values in variants.items():
            rows.append([views, name, values["data_s"] * 1e3,
                         values["compute_s"] * 1e3,
                         values["total_s"] * 1e3,
                         values["exposed_data_s"] * 1e3,
                         values["utilization"], values["prefetch_mb"]])
    text = format_table(
        ["#Views", "Variant", "Data ms", "Compute ms", "Total ms",
         "Exposed-data ms", "PE util", "Prefetch MB"],
        rows, title="Fig. 12 — dataflow & storage-format ablation")
    for views, variants in results.items():
        chart = stacked_latency_chart(
            {name: {"data(exposed)": v["exposed_data_s"],
                    "compute": v["compute_s"]}
             for name, v in variants.items()},
            title=f"Fig. 12 — latency breakdown at {views} views")
        text += "\n\n" + chart
    report("fig12_dataflow_ablation", text)

    for views, variants in results.items():
        ours = variants["ours"]
        var1 = variants["var1"]
        # (1) Ours hides data movement behind compute at every point.
        assert ours["exposed_data_s"] < 0.15 * ours["total_s"]
        # (2) Ours is the fastest and the best-utilised variant.
        assert ours["total_s"] <= min(v["total_s"]
                                      for v in variants.values()) * 1.01
        assert ours["utilization"] >= max(v["utilization"]
                                          for v in variants.values()) * 0.98
        # (4) Var-2/Var-3 are no faster than Var-1 (bank conflicts).
        assert variants["var2"]["total_s"] >= var1["total_s"] * 0.9
        assert variants["var3"]["total_s"] >= var1["total_s"] * 0.9
        if views >= 6:
            # (3) Var-1 is memory-bound at realistic view counts: its
            # data time rivals/exceeds compute (at 2 views footprints
            # are tiny and all variants converge, as in the paper's
            # shrinking bars).
            assert var1["data_s"] > 0.6 * var1["compute_s"]
            # (5) Ours fetches far less DRAM traffic than fixed slicing.
            assert ours["prefetch_mb"] < var1["prefetch_mb"]
