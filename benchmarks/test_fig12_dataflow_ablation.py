"""Regenerate paper Fig. 12: latency breakdown (data movement vs compute)
and PE utilisation for the dataflow/storage ablation — ours vs Var-1
(fixed slicing), Var-2 (row-major storage), Var-3 (view-wise storage) —
at {10, 6, 2} source views on NeRF-Synthetic 800x800, through the
experiment registry."""

from repro.core.registry import get_experiment


def test_fig12_dataflow_ablation(benchmark, report):
    experiment = get_experiment("fig12")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    results = result.rows

    for views, variants in results.items():
        ours = variants["ours"]
        var1 = variants["var1"]
        # (1) Ours hides data movement behind compute at every point.
        assert ours["exposed_data_s"] < 0.15 * ours["total_s"]
        # (2) Ours is the fastest and the best-utilised variant.
        assert ours["total_s"] <= min(v["total_s"]
                                      for v in variants.values()) * 1.01
        assert ours["utilization"] >= max(v["utilization"]
                                          for v in variants.values()) * 0.98
        # (4) Var-2/Var-3 are no faster than Var-1 (bank conflicts).
        assert variants["var2"]["total_s"] >= var1["total_s"] * 0.9
        assert variants["var3"]["total_s"] >= var1["total_s"] * 0.9
        if views >= 6:
            # (3) Var-1 is memory-bound at realistic view counts: its
            # data time rivals/exceeds compute (at 2 views footprints
            # are tiny and all variants converge, as in the paper's
            # shrinking bars).
            assert var1["data_s"] > 0.6 * var1["compute_s"]
            # (5) Ours fetches far less DRAM traffic than fixed slicing.
            assert ours["prefetch_mb"] < var1["prefetch_mb"]
