"""Benchmark harness support.

Each benchmark regenerates one paper table/figure through the
experiment registry (``repro.core.registry``), prints it, and saves
the text to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from the artefacts.  ``benchmark.pedantic(..., rounds=1)`` is
used throughout: the interesting output is the experiment's *result*;
wall-clock is reported once, not statistically sampled.
"""

import os

import pytest

from repro.core.reporting import write_artifact

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ ``slow`` (the figure/table
    harnesses take minutes) so ``pytest -m "not slow"`` is a fast inner
    loop; the hot-path microbenches additionally get ``bench`` so they
    can be selected on their own with ``-m bench``."""
    here = os.path.dirname(__file__)
    for item in items:
        if str(item.fspath).startswith(here):
            item.add_marker(pytest.mark.slow)
            if "test_perf_microbench" in str(item.fspath):
                item.add_marker(pytest.mark.bench)


def emit(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it atomically."""
    banner = f"\n{'#' * 72}\n# {name}\n{'#' * 72}\n"
    print(banner + text)
    write_artifact(os.path.join(RESULTS_DIR, f"{name}.txt"), text + "\n")


@pytest.fixture()
def report():
    return emit
