"""Hot-path perf harness: microbenches + regression tracking.

Times the render-and-simulate critical path primitives (coarse-then-
focus sampling at R=4096, batched trace generation + replay, the fused
autograd training step, the scatter-add gather backward) and, where a
seed loop implementation exists in :mod:`repro.perf.reference`, the
speedup over it.  Results go to ``BENCH_hotpaths.json`` at the repo
root; when a previous file exists its numbers are compared so perf
regressions are visible PR-to-PR.

Run with::

    PYTHONPATH=src python -m benchmarks.harness      # or: make bench

JSON schema (``BENCH_hotpaths.json``)::

    {
      "schema_version": 1,
      "generated_unix": <float seconds>,
      "benches": {
        "<name>": {
          "mean_s": <float>,            # vectorised path, best-of-rounds mean
          "rounds": <int>,
          "loop_reference_mean_s": <float|null>,  # seed loop, if one exists
          "speedup_vs_loop": <float|null>,
          "previous_mean_s": <float|null>,        # from the prior run
          "regression_pct": <float|null>          # +X% means slower now
        }, ...
      }
    }

A bench counts as regressed when ``mean_s`` worsens by more than 25%
against the committed previous run; the harness exits nonzero so CI can
flag it (pass ``--no-strict`` to report without failing).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Optional

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_hotpaths.json")
REGRESSION_THRESHOLD_PCT = 25.0


def _time(func: Callable[[], object], rounds: int = 5,
          min_total_s: float = 0.2) -> float:
    """Mean seconds per call over ``rounds`` repetitions.

    Each round loops the callable enough times to amortise timer noise
    for sub-millisecond paths; the fastest round is reported (standard
    microbench practice — slower rounds measure interference, not code).
    """
    func()  # warm-up (allocator, caches, lazy imports)
    start = time.perf_counter()
    func()
    single = max(time.perf_counter() - start, 1e-9)
    best = float("inf")
    for _ in range(rounds):
        iterations = max(1, int(min_total_s / single / rounds))
        start = time.perf_counter()
        for _ in range(iterations):
            func()
        elapsed = (time.perf_counter() - start) / iterations
        best = min(best, elapsed)
        single = elapsed
    return best


# ----------------------------------------------------------------------
# Bench definitions: name -> (vectorised callable, loop callable | None)
# ----------------------------------------------------------------------

def _sampling_inputs(num_rays: int, num_bins: int = 16):
    rng = np.random.default_rng(0)
    depths = np.tile(np.linspace(2.0, 6.0, num_bins), (num_rays, 1))
    weights = rng.random((num_rays, num_bins)) ** 4
    weights[rng.random(num_rays) < 0.4] = 0.0
    return depths, weights


def bench_coarse_then_focus_plan():
    from repro.models.sampling import coarse_then_focus_plan
    from repro.models.sampling import (allocate_ray_budget, sampling_pdf)
    from repro.perf import reference

    depths, weights = _sampling_inputs(4096)

    def vectorised():
        return coarse_then_focus_plan(
            depths, weights, num_focused_avg=16, n_max=48, tau=1e-3,
            near=2.0, far=6.0, rng=np.random.default_rng(1))

    def looped():
        ray_p, point_pdf, _ = sampling_pdf(weights, 1e-3)
        counts = allocate_ray_budget(ray_p, 16 * 4096, 48)
        plan = reference.focused_depths_loop(
            depths, point_pdf, counts, 48, 2.0, 6.0,
            np.random.default_rng(1))
        return reference.merge_critical_points_loop(
            plan, depths, weights, 1e-3, 48, 6.0)

    return vectorised, looped


def bench_inverse_transform():
    from repro.models.sampling import _inverse_transform
    from repro.perf import reference

    rng = np.random.default_rng(0)
    edges = np.sort(rng.random((4096, 17)), -1) * 4 + 2
    pdf = rng.random((4096, 16))
    uniforms = rng.random((4096, 32))
    return (lambda: _inverse_transform(edges, pdf, uniforms),
            lambda: reference.inverse_transform_loop(edges, pdf, uniforms))


def bench_trace_replay():
    from repro.hardware.dram import DramConfig
    from repro.hardware.interleave import FeatureStore, FootprintRegion
    from repro.hardware.trace import footprints_trace_arrays, replay_trace
    from repro.perf import reference

    store = FeatureStore(num_views=4, height=128, width=128, channels=32)
    footprints = [FootprintRegion(view=v, row0=8, row1=72, col0=8, col1=104)
                  for v in range(4)]
    config = DramConfig()

    def vectorised():
        trace = footprints_trace_arrays(store, footprints,
                                        config.num_banks, config.row_bytes)
        return replay_trace(trace, config)

    def looped():
        requests = []
        for region in footprints:
            requests.extend(reference.footprint_trace_loop(
                store, region, config.num_banks, config.row_bytes))
        return reference.replay_trace_loop(requests, config)

    return vectorised, looped


def bench_autograd_training_step():
    from repro import nn

    rng = np.random.default_rng(0)
    model = nn.MLP(32, [64, 64, 64], 3, rng=rng)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    data = rng.standard_normal((256, 32)).astype(np.float32)
    target = rng.standard_normal((256, 3)).astype(np.float32)

    def step():
        optimizer.zero_grad()
        loss = nn.functional.mse_loss(model(nn.Tensor(data)), target)
        loss.backward()
        optimizer.step()
        return loss.item()

    return step, None


def bench_getitem_backward():
    from repro.nn import Tensor

    rng = np.random.default_rng(0)
    table = rng.standard_normal((4096, 64)).astype(np.float32)
    index = rng.integers(0, 4096, size=16384)
    grad = np.ones((16384, 64), dtype=np.float32)

    def gather_backward():
        x = Tensor(table, requires_grad=True)
        x[index].backward(grad)
        return x.grad

    return gather_backward, None


BENCHES = {
    "coarse_then_focus_plan_r4096": bench_coarse_then_focus_plan,
    "inverse_transform_r4096": bench_inverse_transform,
    "trace_replay_4x64x96": bench_trace_replay,
    "autograd_training_step_mlp": bench_autograd_training_step,
    "getitem_backward_gather_16k": bench_getitem_backward,
}


def run(strict: bool = True) -> int:
    previous: Dict[str, Dict] = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH) as handle:
                previous = json.load(handle).get("benches", {})
        except (json.JSONDecodeError, OSError, AttributeError) as error:
            print(f"warning: ignoring unreadable {RESULT_PATH}: {error}",
                  file=sys.stderr)

    benches: Dict[str, Dict] = {}
    regressions = []
    print(f"{'bench':<34} {'mean':>10} {'loop ref':>10} {'speedup':>8} "
          f"{'prev':>10} {'delta':>8}")
    for name, build in BENCHES.items():
        vectorised, looped = build()
        mean_s = _time(vectorised)
        loop_mean_s: Optional[float] = _time(looped) if looped else None
        speedup = (loop_mean_s / mean_s) if loop_mean_s else None
        prev_mean = previous.get(name, {}).get("mean_s")
        regression_pct = (100.0 * (mean_s - prev_mean) / prev_mean
                          if prev_mean else None)
        benches[name] = {
            "mean_s": mean_s,
            "rounds": 5,
            "loop_reference_mean_s": loop_mean_s,
            "speedup_vs_loop": speedup,
            "previous_mean_s": prev_mean,
            "regression_pct": regression_pct,
        }
        if regression_pct is not None \
                and regression_pct > REGRESSION_THRESHOLD_PCT:
            regressions.append((name, regression_pct))
        print(f"{name:<34} {mean_s * 1e3:>8.2f}ms "
              f"{(loop_mean_s or 0) * 1e3:>8.2f}ms "
              f"{('%.1fx' % speedup) if speedup else '-':>8} "
              f"{(prev_mean or 0) * 1e3:>8.2f}ms "
              f"{('%+.1f%%' % regression_pct) if regression_pct is not None else '-':>8}")

    with open(RESULT_PATH, "w") as handle:
        json.dump({"schema_version": 1, "generated_unix": time.time(),
                   "benches": benches}, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULT_PATH}")

    if regressions:
        for name, pct in regressions:
            print(f"REGRESSION: {name} slowed by {pct:.1f}% "
                  f"(threshold {REGRESSION_THRESHOLD_PCT}%)", file=sys.stderr)
        return 1 if strict else 0
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-strict", action="store_true",
                        help="report regressions without failing")
    args = parser.parse_args()
    return run(strict=not args.no_strict)


if __name__ == "__main__":
    raise SystemExit(main())
