"""Hot-path perf harness: microbenches + regression tracking.

Times the render-and-simulate critical path primitives (coarse-then-
focus sampling at R=4096, batched trace generation + replay, the fused
autograd training step, the scatter-add gather backward) and the
*end-to-end* paths this repo optimises (full ``render_rays`` at R=1024
under ``inference_mode``; the scheduler's all-candidate slab sweep; the
batched accelerator frame simulation),
and, where a seed loop implementation exists in
:mod:`repro.perf.reference`, the speedup over it.  Results go to
``BENCH_hotpaths.json`` at the repo root; when a previous file exists
its numbers are compared so perf regressions are visible PR-to-PR.

Run with::

    PYTHONPATH=src python -m benchmarks.harness            # or: make bench
    PYTHONPATH=src python -m benchmarks.harness --only render_rays_e2e_r1024 \
        scheduler_slab_sweep                               # or: make bench-e2e
    PYTHONPATH=src python -m benchmarks.harness --smoke    # quick CI gate

JSON schema (``BENCH_hotpaths.json``)::

    {
      "schema_version": 1,
      "generated_unix": <float seconds>,
      "benches": {
        "<name>": {
          "mean_s": <float>,            # fast path, median-of-rounds mean
          "rounds": <int>,
          "loop_reference_mean_s": <float|null>,  # seed loop, if one exists
          "speedup_vs_loop": <float|null>,
          "previous_mean_s": <float|null>,        # from the prior run
          "regression_pct": <float|null>,         # +X% means slower now
          "note": "new bench, no baseline"        # only when no usable
        }, ...                                    # prior mean exists
      }
    }

A bench counts as regressed when ``mean_s`` worsens by more than 25%
against the committed previous run; the harness exits nonzero so CI can
flag it (pass ``--no-strict`` to report without failing).  ``--smoke``
runs single short rounds and does not rewrite the JSON — it exists so
``make check`` can exercise every bench body quickly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Iterable, Optional

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_hotpaths.json")
REGRESSION_THRESHOLD_PCT = 25.0

# Per-bench timing budgets beyond the uniform default.  Sub-10ms benches
# on this shared single-core container need more rounds and a larger
# per-round budget before the median sits reliably above scheduler
# noise: ``inverse_transform_r4096`` (~8 ms) drifted 30.1% against its
# committed baseline — past the 25% regression budget — purely from
# round-to-round jitter.  Applied only to measured runs; ``--smoke``
# keeps its single quick round.
TIMING_OVERRIDES: Dict[str, Dict[str, float]] = {
    "inverse_transform_r4096": {"rounds": 9, "min_total_s": 0.9},
}


def _time(func: Callable[[], object], rounds: int = 5,
          min_total_s: float = 0.2) -> float:
    """Median seconds per call over ``rounds`` measured repetitions.

    Each round loops the callable enough times to amortise timer noise
    for sub-millisecond paths.  One full *warmup round* runs first and
    is discarded (allocator, caches, lazy imports, CPU frequency
    settling), then the **median** of the measured rounds is reported.
    The previous best-of-rounds policy tracked the noise floor: on a
    shared single-core container, run-to-run drift of the floor showed
    up as spurious ±5–13 % `regression_pct` swings that ate most of
    the 25 % regression budget.  The median is stable against both
    one-off stalls and lucky fast rounds (pinned in
    ``tests/test_bench_harness.py``).
    """
    func()  # first call: allocator, caches, lazy imports
    start = time.perf_counter()
    func()
    single = max(time.perf_counter() - start, 1e-9)
    means = []
    for round_index in range(rounds + 1):   # +1 = discarded warmup round
        iterations = max(1, int(min_total_s / single / max(rounds, 1)))
        start = time.perf_counter()
        for _ in range(iterations):
            func()
        elapsed = (time.perf_counter() - start) / iterations
        if round_index > 0:
            means.append(elapsed)
        single = elapsed
    return float(np.median(means))


# ----------------------------------------------------------------------
# Bench definitions: name -> (vectorised callable, loop callable | None)
# ----------------------------------------------------------------------

def _sampling_inputs(num_rays: int, num_bins: int = 16):
    rng = np.random.default_rng(0)
    depths = np.tile(np.linspace(2.0, 6.0, num_bins), (num_rays, 1))
    weights = rng.random((num_rays, num_bins)) ** 4
    weights[rng.random(num_rays) < 0.4] = 0.0
    return depths, weights


def bench_coarse_then_focus_plan():
    from repro.models.sampling import coarse_then_focus_plan
    from repro.models.sampling import (allocate_ray_budget, sampling_pdf)
    from repro.perf import reference

    depths, weights = _sampling_inputs(4096)

    def vectorised():
        return coarse_then_focus_plan(
            depths, weights, num_focused_avg=16, n_max=48, tau=1e-3,
            near=2.0, far=6.0, rng=np.random.default_rng(1))

    def looped():
        ray_p, point_pdf, _ = sampling_pdf(weights, 1e-3)
        counts = allocate_ray_budget(ray_p, 16 * 4096, 48)
        plan = reference.focused_depths_loop(
            depths, point_pdf, counts, 48, 2.0, 6.0,
            np.random.default_rng(1))
        return reference.merge_critical_points_loop(
            plan, depths, weights, 1e-3, 48, 6.0)

    return vectorised, looped


def bench_inverse_transform():
    from repro.models.sampling import _inverse_transform
    from repro.perf import reference

    rng = np.random.default_rng(0)
    edges = np.sort(rng.random((4096, 17)), -1) * 4 + 2
    pdf = rng.random((4096, 16))
    uniforms = rng.random((4096, 32))
    return (lambda: _inverse_transform(edges, pdf, uniforms),
            lambda: reference.inverse_transform_loop(edges, pdf, uniforms))


def bench_trace_replay():
    from repro.hardware.dram import DramConfig
    from repro.hardware.interleave import FeatureStore, FootprintRegion
    from repro.hardware.trace import footprints_trace_arrays, replay_trace
    from repro.perf import reference

    store = FeatureStore(num_views=4, height=128, width=128, channels=32)
    footprints = [FootprintRegion(view=v, row0=8, row1=72, col0=8, col1=104)
                  for v in range(4)]
    config = DramConfig()

    def vectorised():
        trace = footprints_trace_arrays(store, footprints,
                                        config.num_banks, config.row_bytes)
        return replay_trace(trace, config)

    def looped():
        requests = []
        for region in footprints:
            requests.extend(reference.footprint_trace_loop(
                store, region, config.num_banks, config.row_bytes))
        return reference.replay_trace_loop(requests, config)

    return vectorised, looped


def bench_autograd_training_step():
    from repro import nn

    rng = np.random.default_rng(0)
    model = nn.MLP(32, [64, 64, 64], 3, rng=rng)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    data = rng.standard_normal((256, 32)).astype(np.float32)
    target = rng.standard_normal((256, 3)).astype(np.float32)

    def step():
        optimizer.zero_grad()
        loss = nn.functional.mse_loss(model(nn.Tensor(data)), target)
        loss.backward()
        optimizer.step()
        return loss.item()

    return step, None


def bench_getitem_backward():
    from repro.nn import Tensor

    rng = np.random.default_rng(0)
    table = rng.standard_normal((4096, 64)).astype(np.float32)
    index = rng.integers(0, 4096, size=16384)
    grad = np.ones((16384, 64), dtype=np.float32)

    def gather_backward():
        x = Tensor(table, requires_grad=True)
        x[index].backward(grad)
        return x.grad

    return gather_backward, None


def bench_render_rays_e2e():
    """Full Gen-NeRF ``render_rays`` for 1024 rays, scene encoded once.

    Fast path: stacked-map batched gathering under ``inference_mode``.
    Loop reference: the seed inference path — 512-ray renderer chunks,
    per-view gather loops, stack-copied pooling, grad-mode graphs.
    """
    from repro import nn
    from repro.geometry.rays import rays_for_image
    from repro.models.gen_nerf import GenNeRF, GenNerfConfig
    from repro.models.ibrnet import ModelConfig
    from repro.models.renderer import render_source_views
    from repro.perf import reference
    from repro.scenes.datasets import make_scene

    scene = make_scene("llff", seed=3, image_scale=1 / 8)
    model = GenNeRF(GenNerfConfig(fine=ModelConfig(ray_module="mixer")))
    model.eval()
    source_images = render_source_views(scene, num_points=64, step=2)
    with nn.inference_mode():
        coarse_maps, fine_maps = model.encode_scene(source_images)
        coarse_list = [coarse_maps[i] for i in range(len(source_images))]
        fine_list = [fine_maps[i] for i in range(len(source_images))]
    bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                            step=8).select(slice(0, 1024))

    def fast():
        with nn.inference_mode():
            return model.render_rays(bundle, scene.source_cameras,
                                     coarse_maps, fine_maps, source_images)

    def looped():
        return reference.render_rays_chunked_loop(
            model, bundle, scene.source_cameras, coarse_list, fine_list,
            source_images, chunk=512)

    return fast, looped


def bench_frame_sharded():
    """One full Gen-NeRF frame render, sharded vs sequential.

    Fast path: ``render_image_gen_nerf(workers=None)`` — the chunk loop
    fanned over the persistent :mod:`repro.core.frame_pool` (autodetect
    width; on a single-core container this resolves to 1 and the bench
    honestly reports ~1.0x).  Loop reference: the identical render with
    ``workers=1`` (the historical in-process chunk loop).  The explicit
    ``chunk`` forces several chunks so multi-core hosts have work to
    fan out; both paths produce byte-identical images
    (``tests/models/test_render_sharded.py``).
    """
    from repro import nn
    from repro.models.gen_nerf import GenNeRF, GenNerfConfig
    from repro.models.ibrnet import ModelConfig
    from repro.models.renderer import (render_image_gen_nerf,
                                       render_source_views)
    from repro.scenes.datasets import make_scene

    scene = make_scene("llff", seed=3, image_scale=1 / 8)
    model = GenNeRF(GenNerfConfig(fine=ModelConfig(ray_module="mixer")))
    model.eval()
    source_images = render_source_views(scene, num_points=64, step=2)
    with nn.inference_mode():
        feature_maps = model.encode_scene(source_images)

    def sharded():
        return render_image_gen_nerf(model, scene, source_images, step=4,
                                     chunk=512, feature_maps=feature_maps,
                                     workers=None)

    def sequential():
        return render_image_gen_nerf(model, scene, source_images, step=4,
                                     chunk=512, feature_maps=feature_maps,
                                     workers=1)

    return sharded, sequential


def bench_frame_sim_sharded():
    """The ``accel_frame_sim`` frame, sharded vs sequential.

    Fast path: ``simulate_frame(workers=None)`` — the plan split at
    patch boundaries and fanned over the frame pool.  Loop reference:
    the identical single-pass call (``workers=1``).  Both share one
    precomputed plan and return bit-identical results at any width
    (``tests/hardware/test_frame_sim_sharded.py``); on a single-core
    container the fast path resolves to the sequential one.
    """
    from repro.core.pipeline import hardware_rig
    from repro.hardware import GenNerfAccelerator
    from repro.models.workload import typical_workload
    from repro.scenes.datasets import DatasetSpec

    spec = DatasetSpec("bench", width=320, height=240, fov_x_deg=50.0,
                       near=2.0, far=6.0, rig="orbit", rig_distance=4.0)
    rig = hardware_rig(spec, num_views=6, seed=0)
    workload = typical_workload(height=240, width=320, num_views=6)
    sharded_accel = GenNerfAccelerator()
    seq_accel = GenNerfAccelerator()
    plan = sharded_accel.plan_frame(rig.novel, rig.sources, rig.near,
                                    rig.far, workload)

    def sharded():
        return sharded_accel.simulate_frame(workload, rig.novel,
                                            rig.sources, rig.near, rig.far,
                                            plan=plan, workers=None)

    def sequential():
        return seq_accel.simulate_frame(workload, rig.novel, rig.sources,
                                        rig.near, rig.far, plan=plan,
                                        workers=1)

    return sharded, sequential


def bench_scheduler_slab_sweep():
    """Full greedy frame partition of a 256x192 frame with 6 views.

    Fast path: one frustum unprojection for every depth slab, one
    projection per view, batched delta-overlap and patch assembly.
    Loop reference: the seed per-(slab, view) projection loops plus the
    per-tile / per-slab Python patch construction.
    """
    from repro.core.pipeline import hardware_rig
    from repro.hardware.scheduler import (GreedyPatchScheduler,
                                          SchedulerConfig)
    from repro.perf import reference
    from repro.scenes.datasets import DatasetSpec

    spec = DatasetSpec("bench", width=256, height=192, fov_x_deg=50.0,
                       near=2.0, far=6.0, rig="orbit", rig_distance=4.0)
    rig = hardware_rig(spec, num_views=6, seed=0)
    scheduler = GreedyPatchScheduler(SchedulerConfig())

    def fast():
        return scheduler.plan_frame(rig.novel, rig.sources, rig.near,
                                    rig.far)

    def looped():
        return reference.plan_frame_loop(scheduler, rig.novel, rig.sources,
                                         rig.near, rig.far)

    return fast, looped


def bench_accel_frame_sim():
    """Cycle-level frame simulation of a 320x240 frame with 6 views.

    Fast path: the batched ``simulate_frame`` — all patches' bank
    loads, DRAM service, and engine compute in one grouped array pass.
    Loop reference: the seed per-patch Python loop
    (``reference.simulate_frame_loop``).  Both consume one shared
    precomputed frame plan (~300 patches) so the bench isolates the
    frame-simulation arithmetic from the scheduler.
    """
    from repro.core.pipeline import hardware_rig
    from repro.hardware import GenNerfAccelerator
    from repro.models.workload import typical_workload
    from repro.perf import reference
    from repro.scenes.datasets import DatasetSpec

    spec = DatasetSpec("bench", width=320, height=240, fov_x_deg=50.0,
                       near=2.0, far=6.0, rig="orbit", rig_distance=4.0)
    rig = hardware_rig(spec, num_views=6, seed=0)
    workload = typical_workload(height=240, width=320, num_views=6)
    fast_accel = GenNerfAccelerator()
    loop_accel = GenNerfAccelerator()
    plan = fast_accel.plan_frame(rig.novel, rig.sources, rig.near, rig.far,
                                 workload)

    def fast():
        return fast_accel.simulate_frame(workload, rig.novel, rig.sources,
                                         rig.near, rig.far, plan=plan)

    def looped():
        return reference.simulate_frame_loop(
            loop_accel, workload, rig.novel, rig.sources, rig.near,
            rig.far, plan=plan)

    return fast, looped


def _training_bench(kind: str):
    """End-to-end training step: fast Trainer vs the seed loop.

    One timed call = a short finetune-style run (reset the model to its
    saved init, rebuild the trainer, fit one pixel block) on a prepared
    scene — the Table 2/3 inner loop.  The fast path exercises the
    whole training fast path: fused flat-buffer Adam with the gradient
    clip folded in, blocked pixel pre-generation with the ground-truth
    quadrature cached on the ``SceneData`` (identically scheduled
    reruns, like these, reuse it — exactly how the table harness
    variants share supervision), and the scene-level im2col cache.
    The loop reference (``repro.perf.reference.TrainerLoop``) unwinds
    all three: per-step GT quadrature, per-parameter Adam + standalone
    clip, per-layer caches only.  Both paths produce bit-identical
    losses and weights (``tests/models/test_training_equivalence.py``).
    """
    import numpy as np

    from repro import models as M
    from repro.perf import reference
    from repro.scenes.datasets import make_scene

    scene = make_scene("llff", seed=3, scene_name="fern",
                       num_source_views=4, image_scale=1 / 32)
    data = M.SceneData.prepare(scene, gt_points=128)
    seed_data = M.SceneData.prepare(scene, gt_points=128)
    cfg = M.TrainConfig(steps=8, rays_per_batch=96, num_points=8,
                        gt_points=128, seed=0, pixel_block_steps=8)
    model_cfg = M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                              density_hidden=12, density_feature_dim=6,
                              ray_module="mixer", n_max=8, encoder_hidden=4)
    if kind == "gen_nerf":
        model = M.GenNeRF(M.GenNerfConfig(fine=model_cfg, coarse_points=4,
                                          focused_points=6),
                          rng=np.random.default_rng(0))
    else:
        model = M.GeneralizableNeRF(model_cfg, rng=np.random.default_rng(0))
    init_state = model.state_dict()

    def fast():
        model.load_state_dict(init_state)
        model.train()
        return M.Trainer(model, [data], cfg).fit(cfg.steps)

    def looped():
        model.load_state_dict(init_state)
        model.train()
        return reference.trainer_fit_loop(model, [seed_data], cfg,
                                          cfg.steps)

    return fast, looped


def bench_serve_replay():
    """The serving scheduler's cross-request micro-batching.

    Fast path: a burst of 12 draft requests replayed through
    :func:`repro.core.serve.replay` with coalescing on — same-group
    rays merge into shared dispatches.  Loop reference: the identical
    trace with ``max_batch=1`` (every chunk dispatches alone — the
    sequential-serving baseline).  Both produce byte-identical pixels
    at every window (``tests/core/test_serve.py``); the scene store
    and models are prepared once so the bench isolates scheduling +
    render, not scene prep.
    """
    from repro.core import serve

    store = serve.SceneStore(capacity=2, source_points=24, cache=None)
    models = {"draft": serve.build_model("draft")}
    trace = serve.synthetic_trace(seed=0, clients=6,
                                  requests_per_client=2,
                                  scenes=("fern",), qualities=("draft",),
                                  burst=True)
    for _, request in trace:
        store.get(request.scene_key)        # warm the LRU once
    common = dict(queue_limit=64, scene_capacity=2, workers=1,
                  source_points=24)
    batched = serve.ServeConfig(batch_window=1, max_batch=4096, **common)
    sequential = serve.ServeConfig(batch_window=0, max_batch=1, **common)

    def coalesced():
        return serve.replay(trace, batched, store=store, models=models)

    def one_by_one():
        return serve.replay(trace, sequential, store=store, models=models)

    return coalesced, one_by_one


def _sparse_fine_pass_bench(occupancy: float):
    """IBRNet fine forward, packed vs padded, at a fixed mask occupancy.

    Fast path: the packed fine pass (``sparse=True``) — gather the
    mask-valid samples, run feature fetch + the pointwise MLP stacks on
    the flat buffers only, scatter zeros back.  Loop reference: the
    pinned padded path (``sparse=False``), which pays the full
    ``(R, n_max)`` grid.  The two are byte-identical
    (``tests/models/test_sparse_fine_pass.py``), so the speedup column
    reads directly as the packing's win at this occupancy — it should
    track ``1 / occupancy`` minus the fixed ray-stage and
    gather/scatter overheads.
    """
    from repro import nn
    from repro.geometry.rays import rays_for_image, stratified_depths
    from repro.models.ibrnet import GeneralizableNeRF, ModelConfig
    from repro.models.renderer import render_source_views
    from repro.scenes.datasets import make_scene

    scene = make_scene("llff", seed=3, image_scale=1 / 8)
    model = GeneralizableNeRF(ModelConfig(ray_module="mixer"))
    model.eval()
    source_images = render_source_views(scene, num_points=64, step=2)
    with nn.inference_mode():
        feature_maps = model.encode_scene(source_images)
    bundle = rays_for_image(scene.target_camera, scene.near, scene.far,
                            step=2).select(slice(0, 1024))
    depths = stratified_depths(np.random.default_rng(0), len(bundle), 32,
                               scene.near, scene.far, jitter=False)
    points = bundle.points_at(depths)
    rng = np.random.default_rng(int(round(occupancy * 100)))
    mask = rng.random(depths.shape) < occupancy

    def packed():
        with nn.inference_mode():
            return model(points, bundle.directions, scene.source_cameras,
                         feature_maps, source_images, mask=mask,
                         sparse=True)

    def padded():
        with nn.inference_mode():
            return model(points, bundle.directions, scene.source_cameras,
                         feature_maps, source_images, mask=mask,
                         sparse=False)

    return packed, padded


def bench_sparse_fine_pass_occ10():
    return _sparse_fine_pass_bench(0.10)


def bench_sparse_fine_pass_occ50():
    return _sparse_fine_pass_bench(0.50)


def bench_sparse_fine_pass_occ90():
    return _sparse_fine_pass_bench(0.90)


def bench_training_step_gen_nerf():
    return _training_bench("gen_nerf")


def bench_training_step_ibrnet():
    return _training_bench("ibrnet")


def _encode_footprint_bench(rays: int):
    """Training steps with the footprint-restricted encode on vs off.

    One timed call = a short IBRNet run on a prepared scene.  Fast
    path: ``Trainer(..., footprint=True)`` — each step plans the exact
    feature-map pixel set its ray bundle gathers and convolves only
    the matching receptive-field crops
    (:mod:`repro.models.footprint`).  Loop reference:
    ``repro.perf.reference.trainer_full_encode`` — the planner forced
    off, every step convolving the full source stack.  The two are
    byte-identical (``tests/models/test_footprint_equivalence.py``),
    so the speedup column reads directly as the footprint win at this
    ray count: it grows as the batch shrinks relative to the feature
    maps (the coverage the step actually needs).
    """
    import numpy as np

    from repro import models as M
    from repro.perf import reference
    from repro.scenes.datasets import make_scene

    scene = make_scene("llff", seed=3, scene_name="fern",
                       num_source_views=6, image_scale=1 / 8)
    data = M.SceneData.prepare(scene, gt_points=64)
    ref_data = M.SceneData.prepare(scene, gt_points=64)
    cfg = M.TrainConfig(steps=6, rays_per_batch=rays, num_points=12,
                        gt_points=64, seed=0, pixel_block_steps=6)
    model_cfg = M.ModelConfig(feature_dim=8, view_hidden=8, score_hidden=4,
                              density_hidden=12, density_feature_dim=6,
                              ray_module="mixer", n_max=12,
                              encoder_hidden=6)
    model = M.GeneralizableNeRF(model_cfg, rng=np.random.default_rng(0))
    init_state = model.state_dict()

    def footprint():
        model.load_state_dict(init_state)
        model.train()
        trainer = M.Trainer(model, [data], cfg, footprint=True)
        losses = trainer.fit(cfg.steps)
        assert trainer.footprint_stats["footprint"] == cfg.steps
        return losses

    def full_encode():
        model.load_state_dict(init_state)
        model.train()
        return reference.trainer_full_encode(model, [ref_data],
                                             cfg).fit(cfg.steps)

    return footprint, full_encode


def bench_train_encode_footprint_r4():
    return _encode_footprint_bench(4)


def bench_train_encode_footprint_r16():
    return _encode_footprint_bench(16)


BENCHES = {
    "coarse_then_focus_plan_r4096": bench_coarse_then_focus_plan,
    "inverse_transform_r4096": bench_inverse_transform,
    "trace_replay_4x64x96": bench_trace_replay,
    "autograd_training_step_mlp": bench_autograd_training_step,
    "getitem_backward_gather_16k": bench_getitem_backward,
    "render_rays_e2e_r1024": bench_render_rays_e2e,
    "frame_sharded": bench_frame_sharded,
    "frame_sim_sharded": bench_frame_sim_sharded,
    "scheduler_slab_sweep": bench_scheduler_slab_sweep,
    "accel_frame_sim": bench_accel_frame_sim,
    "serve_replay": bench_serve_replay,
    "sparse_fine_pass_occ10": bench_sparse_fine_pass_occ10,
    "sparse_fine_pass_occ50": bench_sparse_fine_pass_occ50,
    "sparse_fine_pass_occ90": bench_sparse_fine_pass_occ90,
    "training_step_e2e_gen_nerf": bench_training_step_gen_nerf,
    "training_step_e2e_ibrnet": bench_training_step_ibrnet,
    "train_encode_footprint_r4": bench_train_encode_footprint_r4,
    "train_encode_footprint_r16": bench_train_encode_footprint_r16,
}


def compare_to_previous(mean_s: float, prev_entry: Optional[Dict]
                        ) -> Optional[float]:
    """Regression percentage of ``mean_s`` against a prior JSON entry.

    Returns None when there is no usable prior mean (first run, renamed
    bench, or a malformed entry) — the unit suite feeds this synthetic
    priors to pin the second-run behaviour.
    """
    if not isinstance(prev_entry, dict):
        return None
    prev_mean = prev_entry.get("mean_s")
    if not isinstance(prev_mean, (int, float)) or prev_mean <= 0:
        return None
    return 100.0 * (mean_s - prev_mean) / prev_mean


def run(strict: bool = True, result_path: str = RESULT_PATH,
        only: Optional[Iterable[str]] = None, rounds: int = 5,
        min_total_s: float = 0.2, write: bool = True) -> int:
    previous: Dict[str, Dict] = {}
    if os.path.exists(result_path):
        try:
            with open(result_path) as handle:
                previous = json.load(handle).get("benches", {})
        except (json.JSONDecodeError, OSError, AttributeError) as error:
            print(f"warning: ignoring unreadable {result_path}: {error}",
                  file=sys.stderr)

    selected = dict(BENCHES)
    if only:
        unknown = set(only) - set(BENCHES)
        if unknown:
            print(f"unknown benches: {sorted(unknown)}", file=sys.stderr)
            return 2
        selected = {name: BENCHES[name] for name in only}

    benches: Dict[str, Dict] = {}
    regressions = []
    print(f"{'bench':<34} {'mean':>10} {'loop ref':>10} {'speedup':>8} "
          f"{'prev':>10} {'delta':>8}")
    for name, build in selected.items():
        vectorised, looped = build()
        # Smoke runs (rounds == 1) stay uniformly quick; measured runs
        # honour per-bench budgets for noise-prone sub-10ms paths.
        overrides = TIMING_OVERRIDES.get(name, {}) if rounds > 1 else {}
        bench_rounds = int(overrides.get("rounds", rounds))
        bench_min_total = float(overrides.get("min_total_s", min_total_s))
        mean_s = _time(vectorised, rounds=bench_rounds,
                       min_total_s=bench_min_total)
        loop_mean_s: Optional[float] = (
            _time(looped, rounds=bench_rounds, min_total_s=bench_min_total)
            if looped else None)
        speedup = (loop_mean_s / mean_s) if loop_mean_s else None
        prev_entry = previous.get(name)
        regression_pct = compare_to_previous(mean_s, prev_entry)
        benches[name] = {
            "mean_s": mean_s,
            "rounds": bench_rounds,
            "loop_reference_mean_s": loop_mean_s,
            "speedup_vs_loop": speedup,
            "previous_mean_s": (prev_entry or {}).get("mean_s"),
            "regression_pct": regression_pct,
        }
        if regression_pct is None:
            # A missing prior is a fact worth recording, not a silent
            # pass: first runs of a new bench land with an explicit
            # no-baseline note instead of looking like a clean compare.
            benches[name]["note"] = "new bench, no baseline"
        if regression_pct is not None \
                and regression_pct > REGRESSION_THRESHOLD_PCT:
            regressions.append((name, regression_pct))
        delta = ("%+.1f%%" % regression_pct) if regression_pct is not None \
            else "new"
        print(f"{name:<34} {mean_s * 1e3:>8.2f}ms "
              f"{(loop_mean_s or 0) * 1e3:>8.2f}ms "
              f"{('%.1fx' % speedup) if speedup else '-':>8} "
              f"{((prev_entry or {}).get('mean_s') or 0) * 1e3:>8.2f}ms "
              f"{delta:>8}")
        if regression_pct is None:
            print(f"  note: {name}: new bench, no baseline")

    if write:
        # Partial runs (--only) keep the other benches' previous entries
        # so a targeted rerun cannot silently drop history.
        merged = dict(previous)
        merged.update(benches)
        with open(result_path, "w") as handle:
            json.dump({"schema_version": 1, "generated_unix": time.time(),
                       "benches": merged}, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {result_path}")

    if regressions:
        for name, pct in regressions:
            print(f"REGRESSION: {name} slowed by {pct:.1f}% "
                  f"(threshold {REGRESSION_THRESHOLD_PCT}%)", file=sys.stderr)
        return 1 if strict else 0
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-strict", action="store_true",
                        help="report regressions without failing")
    parser.add_argument("--only", nargs="+", metavar="BENCH",
                        help="run a subset of benches (merged into the "
                             "existing JSON)")
    parser.add_argument("--smoke", action="store_true",
                        help="single quick round per bench, no JSON write "
                             "— exercises every bench body for CI")
    args = parser.parse_args()
    if args.smoke:
        return run(strict=False, only=args.only, rounds=1,
                   min_total_s=0.0, write=False)
    return run(strict=not args.no_strict, only=args.only)


if __name__ == "__main__":
    raise SystemExit(main())
