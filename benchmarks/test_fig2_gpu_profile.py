"""Regenerate paper Fig. 2: GPU latency breakdown of the profiling
workload (10 views, 196 points/ray, ray-transformer model) on an RTX
2080Ti and a Jetson TX2 across the three dataset resolutions — through
the experiment registry (the paper-vs-measured ratio notes are part of
the registry's rendered artefact)."""

from repro.core.registry import get_experiment


def test_fig2_gpu_profile(benchmark, report):
    experiment = get_experiment("fig2")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    results = result.rows

    best_fps = max(phases["fps"]
                   for phases in results["rtx2080ti"].values())
    attention = results["rtx2080ti"]["llff"]["attention_dnn_fraction"]

    # Shape assertions: the paper's three observations.
    assert best_fps < 1.0                                   # (1) not real-time
    for phases in results["rtx2080ti"].values():            # (2) gather huge
        assert phases["acquire_features"] > 0.3 * phases["total"]
    assert 0.3 < attention < 0.6                            # (3) ~44.1%
    # TX2 is strictly slower everywhere.
    for dataset in results["rtx2080ti"]:
        assert results["tx2"][dataset]["total"] \
            > results["rtx2080ti"][dataset]["total"]
