"""Regenerate paper Fig. 2: GPU latency breakdown of the profiling
workload (10 views, 196 points/ray, ray-transformer model) on an RTX
2080Ti and a Jetson TX2 across the three dataset resolutions."""

from repro.core import format_table, ratio_note, run_fig2

PAPER_BEST_FPS_2080TI = 0.249        # Sec. 2.3: "<= 0.249 FPS"
PAPER_ATTENTION_TIME_SHARE = 0.441   # Sec. 2.3, on LLFF


def test_fig2_gpu_profile(benchmark, report):
    results = benchmark.pedantic(run_fig2, rounds=1, iterations=1)

    rows = []
    for device, per_dataset in results.items():
        for dataset, phases in per_dataset.items():
            rows.append([device, dataset,
                         phases["acquire_features"], phases["mlp"],
                         phases["ray_transformer"], phases["others"],
                         phases["total"], phases["fps"]])
    text = format_table(
        ["Device", "Dataset", "Acquire s", "MLP s", "RayTrans s",
         "Others s", "Total s", "FPS"],
        rows, title="Fig. 2 — GPU latency breakdown (vanilla model)")

    best_fps = max(phases["fps"]
                   for phases in results["rtx2080ti"].values())
    attention = results["rtx2080ti"]["llff"]["attention_dnn_fraction"]
    text += "\n\n" + ratio_note(best_fps, PAPER_BEST_FPS_2080TI,
                                "best 2080Ti FPS")
    text += "\n" + ratio_note(attention, PAPER_ATTENTION_TIME_SHARE,
                              "ray-transformer share of DNN time (LLFF)")
    report("fig2_gpu_profile", text)

    # Shape assertions: the paper's three observations.
    assert best_fps < 1.0                                   # (1) not real-time
    for phases in results["rtx2080ti"].values():            # (2) gather huge
        assert phases["acquire_features"] > 0.3 * phases["total"]
    assert 0.3 < attention < 0.6                            # (3) ~44.1%
    # TX2 is strictly slower everywhere.
    for dataset in results["rtx2080ti"]:
        assert results["tx2"][dataset]["total"] \
            > results["rtx2080ti"][dataset]["total"]
