"""Regenerate paper Fig. 11: scalability of the throughput advantage
with the number of source views {10, 6, 4, 2, 1} and sampled points
{128, 112, 96, 80, 64} on NeRF-Synthetic 800x800."""

from repro.core import ascii_line_chart, format_table, run_fig11

PAPER_MIN_SPEEDUP = 208.8   # "consistently outperforms ... >= 208.8x"


def test_fig11_scalability(benchmark, report):
    results = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    view_rows = [[r["num_views"], r["gen_nerf_fps"], r["rtx2080ti_fps"],
                  r["tx2_fps"], r["speedup_vs_2080ti"]]
                 for r in results["views"]]
    point_rows = [[r["points_per_ray"], r["gen_nerf_fps"],
                   r["rtx2080ti_fps"], r["tx2_fps"],
                   r["speedup_vs_2080ti"]]
                  for r in results["points"]]
    text = format_table(
        ["#Views", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS", "Speedup"],
        view_rows, title="Fig. 11 (left) — FPS vs #source views")
    text += "\n\n" + format_table(
        ["#Points", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS", "Speedup"],
        point_rows, title="Fig. 11 (right) — FPS vs #sampled points")
    text += "\n\n" + ascii_line_chart(
        {"gen_nerf": ([r["num_views"] for r in results["views"]],
                      [r["gen_nerf_fps"] for r in results["views"]]),
         "2080Ti x100": ([r["num_views"] for r in results["views"]],
                         [100 * r["rtx2080ti_fps"]
                          for r in results["views"]])},
        title="Fig. 11 (left) — FPS vs #views (GPU scaled x100)",
        x_label="#source views", y_label="FPS")
    report("fig11_scalability", text)

    # Shape: the accelerator wins by a large factor at EVERY setting
    # (paper: >= 208.8x; we accept the same order of magnitude).
    for r in results["views"] + results["points"]:
        assert r["speedup_vs_2080ti"] > 60
    # Monotonicity: fewer views and fewer points are both (weakly)
    # faster on the accelerator; at 1-2 views a view-independent stage
    # saturates, so allow ties.
    view_fps = [r["gen_nerf_fps"] for r in results["views"]]     # 10 -> 1
    assert all(b >= a * 0.999 for a, b in zip(view_fps, view_fps[1:]))
    point_fps = [r["gen_nerf_fps"] for r in results["points"]]   # 128 -> 64
    assert all(b >= a * 0.999 for a, b in zip(point_fps, point_fps[1:]))
