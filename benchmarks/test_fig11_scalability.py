"""Regenerate paper Fig. 11: scalability of the throughput advantage
with the number of source views {10, 6, 4, 2, 1} and sampled points
{128, 112, 96, 80, 64} on NeRF-Synthetic 800x800 — through the
experiment registry."""

from repro.core.registry import get_experiment


def test_fig11_scalability(benchmark, report):
    experiment = get_experiment("fig11")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    results = result.rows

    # Shape: the accelerator wins by a large factor at EVERY setting
    # (paper: >= 208.8x; we accept the same order of magnitude).
    for r in results["views"] + results["points"]:
        assert r["speedup_vs_2080ti"] > 60
    # Monotonicity: fewer views and fewer points are both (weakly)
    # faster on the accelerator; at 1-2 views a view-independent stage
    # saturates, so allow ties.
    view_fps = [r["gen_nerf_fps"] for r in results["views"]]     # 10 -> 1
    assert all(b >= a * 0.999 for a, b in zip(view_fps, view_fps[1:]))
    point_fps = [r["gen_nerf_fps"] for r in results["points"]]   # 128 -> 64
    assert all(b >= a * 0.999 for a, b in zip(point_fps, point_fps[1:]))
