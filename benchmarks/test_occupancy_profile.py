"""Occupancy profile (sparse fine pass evidence base).

Regenerates the per-ray valid-sample occupancy histograms across all
scene families through the experiment registry and asserts the property
the packed fine pass depends on: the occupancy-stress families actually
de-saturate ``n_max`` (ISSUE 9 / docs/performance.md, "Sparse fine
pass")."""

from repro.core.experiments import OCCUPANCY_FAMILIES
from repro.core.registry import get_experiment


def test_occupancy_profile(benchmark, report):
    experiment = get_experiment("occupancy_profile")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    rows = result.rows

    by_family = {row["family"]: row for row in rows}
    assert set(by_family) == set(OCCUPANCY_FAMILIES)
    for row in rows:
        assert row["rays"] > 0
        assert len(row["histogram"]) == 10
        assert sum(row["histogram"]) == row["rays"]
        assert 0.0 <= row["mean_occupancy"] <= 1.0
        assert 0.0 <= row["empty_fraction"] <= 1.0
        assert 0.0 <= row["saturated_fraction"] <= 1.0

    # The new families bracket the old regime: orbit_sparse holds the
    # sub-50% mean the acceptance criteria require, and thicket stays
    # materially less saturated than the LLFF clutter.
    assert by_family["orbit_sparse"]["mean_occupancy"] < 0.5
    assert by_family["thicket"]["saturated_fraction"] \
        < by_family["llff"]["saturated_fraction"]
    # The packed path's win is proportional to (1 - occupancy): at least
    # one family must leave most of the padded grid empty.
    assert min(row["mean_occupancy"] for row in rows) < 0.35
