"""Regenerate paper Table 2: component ablation — rendering quality
(PSNR up / LPIPS-proxy down) and efficiency (MFLOPs/pixel, paper scale)
for the technique ladder on the four LLFF scene analogues — through the
experiment registry (the registry's ``table2`` defaults are this
committed artefact's configuration).

Quality numbers come from short numpy training runs (minutes, not the
paper's 250K GPU steps).  Two of the paper's orderings reproduce and
are asserted:

* coarse-then-focus keeps backbone quality while cutting FLOPs ~3x;
* channel pruning cuts another >5x at a visible quality cost, and
  quality degrades monotonically as conditioning views are removed.

One does NOT reproduce on our substitute scenes and is only recorded:
removing the ray transformer barely hurts here, because analytic
fields give per-point multi-view variance cues strong enough for
density estimation (real captures have the depth ambiguity the paper's
ray transformer resolves).  See EXPERIMENTS.md.
"""

import numpy as np

from repro.core.registry import PAPER_TABLE2_MFLOPS, get_experiment


def _mean_psnr(row):
    return float(np.mean([psnr for psnr, _ in row.per_scene.values()]))


def test_table2_ablation(benchmark, report):
    experiment = get_experiment("table2")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    rows = result.rows

    by_method = {row.method: row for row in rows}
    vanilla = _mean_psnr(by_method["vanilla IBRNet"])
    no_transformer = _mean_psnr(by_method["- ray transformer"])
    mixer = _mean_psnr(by_method["+ Ray-Mixer"])
    ctf = _mean_psnr(by_method["+ Coarse-then-Focus"])
    pruned10 = _mean_psnr(by_method["+ channel pruning (10 views)"])
    pruned6 = _mean_psnr(by_method["+ channel pruning (6 views)"])
    pruned4 = _mean_psnr(by_method["+ channel pruning (4 views)"])

    # Reproducible orderings (slack for short training): scene
    # generation is now deterministic per process (crc32 scene-name
    # seeding), and at minutes-scale training the fixed scenes land a
    # ~4 dB mixer-vs-pointwise gap, so the band is sized accordingly.
    assert abs(mixer - no_transformer) < 4.5       # mixer ~ per-point here
    assert ctf > mixer - 2.0                       # CtF keeps quality
    assert ctf > vanilla - 2.0
    assert pruned10 < ctf                          # pruning costs quality
    # View-count trend: at the paper's 250K steps more views help; at
    # minutes-scale training the closest views dominate and extra
    # distant views mildly hurt (deviation recorded in EXPERIMENTS.md).
    # Assert the variants stay within a narrow band instead.
    assert max(pruned10, pruned6, pruned4) \
        - min(pruned10, pruned6, pruned4) < 4.0
    # All variants render usable images after minutes of training.
    assert min(vanilla, no_transformer, mixer, ctf) > 20
    # FLOPs ladder matches the paper's within the calibration tolerance.
    for row in rows:
        paper = PAPER_TABLE2_MFLOPS[row.method]
        assert abs(row.mflops_per_pixel - paper) <= 0.16 * paper
