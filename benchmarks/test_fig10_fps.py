"""Regenerate paper Fig. 10: throughput of the Gen-NeRF accelerator vs
RTX 2080Ti and Jetson TX2 on the three datasets (delivered model:
pruned, Ray-Mixer, 16 coarse + 64 focused points, 6 source views)."""

from repro.core import format_table, ratio_note, run_fig10

PAPER_SPEEDUP_2080TI = {"deepvoxels": 239.3, "nerf_synthetic": 246.0,
                        "llff": 255.8}
PAPER_SPEEDUP_TX2_LLFF = 7448.9


def test_fig10_fps(benchmark, report):
    results = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    rows = []
    for dataset, r in results.items():
        rows.append([dataset, r["gen_nerf_fps"], r["rtx2080ti_fps"],
                     r["tx2_fps"], r["speedup_vs_2080ti"],
                     r["speedup_vs_tx2"]])
    text = format_table(
        ["Dataset", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS",
         "Speedup vs 2080Ti", "vs TX2"],
        rows, title="Fig. 10 — throughput comparison")
    notes = [ratio_note(results[d]["speedup_vs_2080ti"],
                        PAPER_SPEEDUP_2080TI[d], f"{d} speedup vs 2080Ti")
             for d in results]
    notes.append(ratio_note(results["llff"]["speedup_vs_tx2"],
                            PAPER_SPEEDUP_TX2_LLFF, "llff speedup vs TX2"))
    report("fig10_fps", text + "\n\n" + "\n".join(notes))

    for dataset, r in results.items():
        # Shape: accelerator >> desktop GPU >> edge GPU on every dataset.
        assert r["gen_nerf_fps"] > r["rtx2080ti_fps"] > r["tx2_fps"]
        # Factor: same order of magnitude as the paper's 239-256x.
        assert 80 < r["speedup_vs_2080ti"] < 600
    # Real-time on the 800x800 dataset (paper: >= 24 FPS; 10% slack for
    # our reconstructed workload dims).
    assert results["nerf_synthetic"]["gen_nerf_fps"] > 21.5
