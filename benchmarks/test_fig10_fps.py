"""Regenerate paper Fig. 10: throughput of the Gen-NeRF accelerator vs
RTX 2080Ti and Jetson TX2 on the three datasets (delivered model:
pruned, Ray-Mixer, 16 coarse + 64 focused points, 6 source views) —
through the experiment registry (the paper-speedup ratio notes are part
of the registry's rendered artefact)."""

from repro.core.registry import get_experiment


def test_fig10_fps(benchmark, report):
    experiment = get_experiment("fig10")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    results = result.rows

    for dataset, r in results.items():
        # Shape: accelerator >> desktop GPU >> edge GPU on every dataset.
        assert r["gen_nerf_fps"] > r["rtx2080ti_fps"] > r["tx2_fps"]
        # Factor: same order of magnitude as the paper's 239-256x.
        assert 80 < r["speedup_vs_2080ti"] < 600
    # Real-time on the 800x800 dataset (paper: >= 24 FPS; 10% slack for
    # our reconstructed workload dims).
    assert results["nerf_synthetic"]["gen_nerf_fps"] > 21.5
