"""Regenerate paper Fig. 9: PSNR vs sampled points (top row) and vs
MFLOPs/pixel (bottom row), Gen-NeRF's coarse-then-focus sampling against
IBRNet's hierarchical sampling, on the three dataset families."""

import numpy as np

from repro.core import ascii_line_chart, format_table, run_fig9


def test_fig9_psnr_vs_points(benchmark, report):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    rows = []
    for dataset, curves in results.items():
        for curve_name, points in curves.items():
            for point in points:
                rows.append([dataset, curve_name, point.label,
                             point.avg_points, point.mflops_per_pixel,
                             point.psnr])
    text = format_table(
        ["Dataset", "Curve", "Config", "Avg points", "MFLOPs/px", "PSNR"],
        rows, title="Fig. 9 — rendering quality vs sampling budget")
    for dataset, curves in results.items():
        chart = ascii_line_chart(
            {name: ([p.avg_points for p in pts], [p.psnr for p in pts])
             for name, pts in curves.items()},
            title=f"Fig. 9 (top) — {dataset}", x_label="avg points/ray",
            y_label="PSNR dB")
        text += "\n\n" + chart
    report("fig9_psnr_vs_points", text)

    for dataset, curves in results.items():
        gen = curves["gen_nerf"]
        ibr = curves["ibrnet"]
        # (1) At every matched point budget Gen-NeRF wins (paper: "a
        # better PSNR under the same number of sampled points").
        for g in gen:
            matched = min(ibr, key=lambda p: abs(p.avg_points
                                                 - g.avg_points))
            if abs(matched.avg_points - g.avg_points) < 8:
                assert g.psnr > matched.psnr, \
                    f"{dataset}: {g.label} vs {matched.label}"
        # (2) Paper calls out ~+4.67 dB at 24 points on NeRF Synthetic;
        # our oracle evaluation gives at least that gap at ~24 points.
        if dataset == "nerf_synthetic":
            g24 = min(gen, key=lambda p: abs(p.avg_points - 24))
            i24 = min(ibr, key=lambda p: abs(p.avg_points - 24))
            assert g24.psnr - i24.psnr > 4.0
        # (3) FLOPs at matched points are no higher for Gen-NeRF (the
        # lightweight coarse pass; paper Fig. 9 bottom).
        for g in gen:
            matched = min(ibr, key=lambda p: abs(p.avg_points
                                                 - g.avg_points))
            if abs(matched.avg_points - g.avg_points) < 8:
                assert g.mflops_per_pixel <= matched.mflops_per_pixel * 1.1
