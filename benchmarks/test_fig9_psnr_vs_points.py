"""Regenerate paper Fig. 9: PSNR vs sampled points (top row) and vs
MFLOPs/pixel (bottom row), Gen-NeRF's coarse-then-focus sampling against
IBRNet's hierarchical sampling, on the three dataset families — through
the experiment registry."""

from repro.core.registry import get_experiment


def test_fig9_psnr_vs_points(benchmark, report):
    experiment = get_experiment("fig9")
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(experiment.artefact, result.text)
    results = result.rows

    for dataset, curves in results.items():
        gen = curves["gen_nerf"]
        ibr = curves["ibrnet"]
        # (1) At every matched point budget Gen-NeRF wins (paper: "a
        # better PSNR under the same number of sampled points").
        for g in gen:
            matched = min(ibr, key=lambda p: abs(p.avg_points
                                                 - g.avg_points))
            if abs(matched.avg_points - g.avg_points) < 8:
                assert g.psnr > matched.psnr, \
                    f"{dataset}: {g.label} vs {matched.label}"
        # (2) Paper calls out ~+4.67 dB at 24 points on NeRF Synthetic;
        # our oracle evaluation gives at least that gap at ~24 points.
        if dataset == "nerf_synthetic":
            g24 = min(gen, key=lambda p: abs(p.avg_points - 24))
            i24 = min(ibr, key=lambda p: abs(p.avg_points - 24))
            assert g24.psnr - i24.psnr > 4.0
        # (3) FLOPs at matched points are no higher for Gen-NeRF (the
        # lightweight coarse pass; paper Fig. 9 bottom).
        for g in gen:
            matched = min(ibr, key=lambda p: abs(p.avg_points
                                                 - g.avg_points))
            if abs(matched.avg_points - g.avg_points) < 8:
                assert g.mflops_per_pixel <= matched.mflops_per_pixel * 1.1
