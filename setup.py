"""Setuptools shim.

The offline environment has setuptools but not ``wheel``, so PEP 660
editable installs (``pip install -e .`` with build isolation) cannot
build; this shim keeps the classic ``setup.py develop`` / legacy
``pip install -e . --no-build-isolation --no-use-pep517`` paths working.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
