# Developer entry points.  PYTHONPATH=src everywhere: the package is
# used in-tree, no editable install required.

PYTEST := PYTHONPATH=src python -m pytest
HARNESS := PYTHONPATH=src python -m benchmarks.harness
REPRO := PYTHONPATH=src python -m repro

.PHONY: test test-all bench bench-e2e bench-train bench-shard bench-serve bench-sparse bench-encode bench-smoke perf docs-check sweep-smoke batch-smoke serve-smoke check

BATCH_SMOKE_OUT := /tmp/repro-batch-smoke

test:      ## fast inner loop: unit/property tests, no figure harnesses
	$(PYTEST) -q -m "not slow"

test-all:  ## full tier-1 suite (tests + paper figure/table harnesses)
	$(PYTEST) -x -q

bench:     ## hot-path perf harness -> BENCH_hotpaths.json (fails on >25% regression)
	$(HARNESS)

bench-e2e: ## end-to-end benches only (render_rays + scheduler slab sweep)
	$(HARNESS) --only render_rays_e2e_r1024 scheduler_slab_sweep

bench-train: ## training benches only (fused-Adam/GT-cache fast path vs seed loop)
	$(HARNESS) --only training_step_e2e_gen_nerf training_step_e2e_ibrnet autograd_training_step_mlp

bench-shard: ## intra-frame sharding benches (sharded vs sequential frame render/sim)
	$(HARNESS) --only frame_sharded frame_sim_sharded

bench-serve: ## serving bench only (coalesced replay vs sequential serving)
	$(HARNESS) --only serve_replay

bench-sparse: ## sparse fine-pass benches (packed vs padded at 10/50/90% occupancy)
	$(HARNESS) --only sparse_fine_pass_occ10 sparse_fine_pass_occ50 sparse_fine_pass_occ90

bench-encode: ## footprint-restricted training encode vs full encode (4/16-ray batches)
	$(HARNESS) --only train_encode_footprint_r4 train_encode_footprint_r16

bench-smoke: ## one quick round of every bench body (incl. sharding), no JSON write
	$(HARNESS) --smoke

perf:      ## pytest-benchmark microbenches (statistical timings)
	$(PYTEST) -q -m bench

docs-check: ## README/docs links and code references resolve
	$(PYTEST) -q tests/test_docs.py

sweep-smoke: ## tiny registry-driven sweep through the CLI (seconds)
	$(REPRO) sweep dataset=deepvoxels views=2 points=16 variant=ours,var1 --workers 1

serve-smoke: ## one JSON request through the real serve daemon (seconds)
	echo '{"scene": "fern", "quality": "draft"}' | $(REPRO) serve --source-points 16 | grep -q '"status": "ok"'

batch-smoke: ## 3-job batch ingestion demo: 2 artefacts + 1 quarantined (seconds)
	rm -rf $(BATCH_SMOKE_OUT)
	$(REPRO) batch examples/batch_jobs --out $(BATCH_SMOKE_OUT)
	test -f $(BATCH_SMOKE_OUT)/table1_from_batch.txt
	test -f $(BATCH_SMOKE_OUT)/b_patch_candidates.txt
	test -f $(BATCH_SMOKE_OUT)/batch_summary.txt
	test -f $(BATCH_SMOKE_OUT)/errors/c_broken_spec.json
	test -f $(BATCH_SMOKE_OUT)/errors/c_broken_spec.report.txt

check: test docs-check sweep-smoke batch-smoke serve-smoke bench-smoke  ## one command gates a PR: fast tests + docs links + sweep/batch/serve smokes + bench smoke
