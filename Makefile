# Developer entry points.  PYTHONPATH=src everywhere: the package is
# used in-tree, no editable install required.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test test-all bench perf

test:      ## fast inner loop: unit/property tests, no figure harnesses
	$(PYTEST) -q -m "not slow"

test-all:  ## full tier-1 suite (tests + paper figure/table harnesses)
	$(PYTEST) -x -q

bench:     ## hot-path perf harness -> BENCH_hotpaths.json (fails on >25% regression)
	PYTHONPATH=src python -m benchmarks.harness

perf:      ## pytest-benchmark microbenches (statistical timings)
	$(PYTEST) -q -m bench
