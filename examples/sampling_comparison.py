"""Compare sampling strategies under the oracle field (paper Fig. 9).

Shows *why* coarse-then-focus sampling wins: at a matched total point
budget it concentrates samples where the coarse pass found hitting
probability, so rendering quality per sampled point is much higher than
stratified/hierarchical baselines.  Uses the oracle-field evaluator (no
training), so it runs in seconds and isolates the sampling effect.
"""

import numpy as np

from repro import models as M
from repro.core import format_table
from repro.models.oracle import OracleStrategy, oracle_render_image
from repro.scenes import make_scene


def main() -> None:
    scene = make_scene("nerf_synthetic", seed=3, image_scale=1 / 8)
    reference = M.render_target_reference(scene, num_points=384, step=4)
    print(f"scene {scene.name} — reference rendered with 384 points/ray\n")

    strategies = [
        OracleStrategy(kind="uniform", points=16, white_background=True),
        OracleStrategy(kind="uniform", points=48, white_background=True),
        OracleStrategy(kind="hierarchical", coarse_points=8, points=16,
                       white_background=True),
        OracleStrategy(kind="hierarchical", coarse_points=16, points=32,
                       white_background=True),
        OracleStrategy(kind="coarse_focus", coarse_points=8, points=16,
                       white_background=True),
        OracleStrategy(kind="coarse_focus", coarse_points=16, points=32,
                       white_background=True),
    ]
    rows = []
    for strategy in strategies:
        image, stats = oracle_render_image(
            scene.field, scene.target_camera, scene.near, scene.far,
            strategy, step=4)
        rows.append([strategy.label, f"{stats['avg_points']:.1f}",
                     f"{M.psnr(image, reference):.2f}",
                     f"{M.ssim(image, reference):.3f}"])
    print(format_table(["strategy", "avg points/ray", "PSNR", "SSIM"], rows,
                       title="Sampling strategies at matched budgets"))
    print("\nNote how coarse-then-focus at ~24 points matches or beats "
          "uniform sampling at twice the budget — the paper's Fig. 9.")


if __name__ == "__main__":
    main()
