"""Quickstart: render a novel view of a procedural scene with Gen-NeRF.

Walks the whole public API in one sitting:

1. build a procedural scene (an offline stand-in for an LLFF capture),
2. render its source views (the conditioning input),
3. create an untrained Gen-NeRF model pair, train it for a few hundred
   steps, and
4. render the held-out novel view with coarse-then-focus sampling,
   reporting PSNR / SSIM / LPIPS-proxy against the dense reference.

Runs in a few minutes on a laptop CPU.  For the paper-scale efficiency
numbers see ``examples/accelerator_simulation.py``.
"""

import time

import numpy as np

from repro import models as M
from repro.scenes import make_scene


def main() -> None:
    rng = np.random.default_rng(0)
    print("=== Gen-NeRF quickstart ===")

    # 1. A procedural LLFF-style scene at 1/12 scale (84x63 pixels).
    scene = make_scene("llff", seed=1, scene_name="fortress",
                       image_scale=1 / 12, num_source_views=6)
    print(f"scene: {scene.name}, sources={scene.num_source_views}, "
          f"target={scene.target_camera.intrinsics.width}x"
          f"{scene.target_camera.intrinsics.height}")

    # 2. Source views come from the analytic field's reference renderer.
    data = M.SceneData.prepare(scene, gt_points=128)
    print(f"source images: {data.source_images.shape}")

    # 3. Gen-NeRF model pair: coarse (channel scale 0.25, pointwise
    #    density head) + fine (Ray-Mixer).  Small dims for numpy speed.
    config = M.GenNerfConfig(
        fine=M.ModelConfig(feature_dim=12, view_hidden=12, score_hidden=6,
                           density_hidden=24, density_feature_dim=8,
                           ray_module="mixer", n_max=20, encoder_hidden=8),
        coarse_points=8, focused_points=12)
    model = M.GenNeRF(config, rng=rng)
    print(f"parameters: {model.num_parameters()}")

    trainer = M.Trainer(model, [data],
                        M.TrainConfig(steps=200, rays_per_batch=48,
                                      num_points=20, seed=0))
    start = time.time()
    losses = trainer.fit(log_every=50)
    print(f"trained 200 steps in {time.time() - start:.1f}s "
          f"(loss {losses[0]:.4f} -> {losses[-1]:.4f})")

    # 4. Render the novel view and score it.
    image, stats = M.render_image_gen_nerf(model, scene, data.source_images,
                                           step=2)
    image = np.clip(image, 0.0, 1.0)
    reference = M.render_target_reference(scene, num_points=192, step=2)
    print(f"rendered {image.shape[1]}x{image.shape[0]} with "
          f"{stats['avg_focused_points']:.1f} avg focused points/ray "
          f"(+{stats['coarse_points']:.0f} coarse)")
    print(f"PSNR  {M.psnr(image, reference):6.2f} dB")
    print(f"SSIM  {M.ssim(image, reference):6.3f}")
    print(f"LPIPS-proxy {M.lpips_proxy(image, reference):.4f} (lower=better)")


if __name__ == "__main__":
    main()
