"""Explore the epipolar geometry behind the accelerator's dataflow.

Demonstrates, with numbers, the three properties of paper Sec. 4.1 that
justify the point-patch dataflow, then runs the greedy 3D-point-patch
partition on a frame and reports what it chose and how much scene-
feature traffic the choice saves against fixed slicing (Var-1).
"""

import numpy as np

from repro.core import format_table, hardware_rig
from repro.geometry import (EpipolarPair, group_rays_by_epipolar_lines,
                            pixels_through_epipole)
from repro.hardware import (GreedyPatchScheduler, SchedulerConfig,
                            fixed_partition)
from repro.scenes import DATASETS


def main() -> None:
    spec = DATASETS["nerf_synthetic"]
    rig = hardware_rig(spec, num_views=6)
    novel, source = rig.novel, rig.sources[0]
    pair = EpipolarPair(novel, source)

    print("=== Property 1: samples on one ray share an epipolar line ===")
    residual = pair.property1_residual(np.array([300.0, 420.0]),
                                       np.linspace(rig.near, rig.far, 64))
    print(f"max distance of 64 projected ray samples to the epipolar "
          f"line: {residual:.2e} px\n")

    print("=== Property 2: pixels collinear with the epipole share it ===")
    collinear = pixels_through_epipole(pair.epipole_novel, angle=0.4,
                                       count=12, spacing=40.0)
    random_pixels = np.random.default_rng(0).uniform(
        0, spec.height, (12, 2))
    print(f"epipolar-line angular spread, collinear pixels: "
          f"{pair.property2_line_spread(collinear):.2e} rad")
    print(f"epipolar-line angular spread, random pixels:    "
          f"{pair.property2_line_spread(random_pixels):.3f} rad\n")

    print("=== Property 3: close 3D points, close footprints ===")
    for size in (0.05, 0.2, 0.8):
        cloud = np.random.default_rng(1).uniform(-size, size, (64, 3))
        spread = pair.property3_projection_spread(cloud)
        print(f"point cloud half-extent {size:4.2f} -> source-view "
              f"footprint diameter {spread:7.2f} px")

    print("\n=== Ray grouping under a single source view (Sec. 4.2) ===")
    pixels = np.random.default_rng(2).uniform(0, spec.height, (4096, 2))
    groups = group_rays_by_epipolar_lines(novel, source, pixels,
                                          num_groups=16)
    counts = np.bincount(groups, minlength=16)
    print(f"4096 rays -> 16 epipolar ray groups, sizes "
          f"{counts.min()}..{counts.max()}")

    print("\n=== Greedy 3D-point-patch partition (Sec. 4.3) ===")
    config = SchedulerConfig()
    scheduler = GreedyPatchScheduler(config)
    plan = scheduler.plan_frame(novel, rig.sources, rig.near, rig.far)
    rows = [[str(shape), count]
            for shape, count in plan.candidate_histogram.items() if count]
    print(format_table(["chosen patch shape", "#patches"], rows))
    print(f"greedy plan: {plan.num_patches} patches, "
          f"{plan.total_prefetch_bytes / 1e6:.0f} MB DRAM traffic")

    var1 = fixed_partition(novel, rig.sources, rig.near, rig.far, config)
    print(f"Var-1 fixed slicing: {var1.num_patches} patches, "
          f"{var1.total_prefetch_bytes / 1e6:.0f} MB DRAM traffic "
          f"({var1.total_prefetch_bytes / plan.total_prefetch_bytes:.1f}x "
          f"more)")


if __name__ == "__main__":
    main()
