"""Simulate the Gen-NeRF accelerator on the paper's typical workload.

Reproduces the headline hardware story in one script: the delivered
(pruned, Ray-Mixer, coarse-then-focus) model rendering 800x800 frames
from 6 source views on

* the Gen-NeRF accelerator (cycle-level simulator; paper: 24.9 FPS),
* an RTX 2080Ti and a Jetson TX2 (calibrated roofline models), and
* the Fig. 12 dataflow/storage ablation variants.

Also prints the Table 1 area/power budget and the prefetch traffic the
greedy 3D-point-patch partition achieves, then demonstrates the batched
``simulate_frame`` fast path directly: one frame plan reused across a
workload sweep (the ``plan=`` argument) and the speedup over the
preserved per-patch seed loop.
"""

import time

from repro.core import (CoDesignPipeline, dataflow_ablation, format_table,
                        hardware_rig, run_table1)
from repro.hardware import GenNerfAccelerator
from repro.models.workload import typical_workload
from repro.perf.reference import simulate_frame_loop
from repro.scenes.datasets import DATASETS


def batched_simulation_demo() -> None:
    """Drive the batched ``simulate_frame`` directly (no pipeline glue).

    The whole frame is evaluated as one grouped array pass; scheduling
    is paid once and the resulting plan is shared across a point-budget
    sweep and with the seed per-patch loop (which stays bit-identical —
    the equivalence suite pins every output field).
    """
    spec = DATASETS["nerf_synthetic"]
    rig = hardware_rig(spec, num_views=6, seed=0)
    workload = typical_workload(spec.height, spec.width, num_views=6)
    accelerator = GenNerfAccelerator()

    start = time.perf_counter()
    plan = accelerator.plan_frame(rig.novel, rig.sources, rig.near,
                                  rig.far, workload)
    plan_s = time.perf_counter() - start
    print(f"greedy plan: {plan.num_patches} patches, "
          f"{plan.total_prefetch_bytes / 1e6:.0f} MB prefetch "
          f"({plan_s * 1e3:.0f} ms to schedule)")

    rows = []
    for points in (128, 96, 64):
        sweep_load = typical_workload(spec.height, spec.width, num_views=6,
                                      points_per_ray=points)
        sim = accelerator.simulate_frame(sweep_load, rig.novel, rig.sources,
                                         rig.near, rig.far, plan=plan)
        rows.append([points, f"{sim.fps:.1f}",
                     f"{sim.compute_time_s * 1e3:.1f}",
                     f"{sim.data_time_s * 1e3:.2f}",
                     f"{sim.pe_utilization:.2f}"])
    print(format_table(
        ["points/ray", "FPS", "compute ms", "exposed data ms", "PE util"],
        rows, title="one plan, three workloads (plan= reuse)"))

    start = time.perf_counter()
    fast = accelerator.simulate_frame(workload, rig.novel, rig.sources,
                                      rig.near, rig.far, plan=plan)
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    loop = simulate_frame_loop(accelerator, workload, rig.novel,
                               rig.sources, rig.near, rig.far, plan=plan)
    loop_s = time.perf_counter() - start
    assert fast.total_time_s == loop.total_time_s   # bit-identical
    print(f"batched frame simulation: {fast_s * 1e3:.0f} ms vs "
          f"{loop_s * 1e3:.0f} ms seed per-patch loop "
          f"({loop_s / max(fast_s, 1e-9):.1f}x), outputs bit-identical")


def main() -> None:
    print("=== Gen-NeRF accelerator simulation ===\n")
    print(format_table(
        ["module", "area mm^2", "paper", "power mW", "paper"],
        run_table1(), title="Table 1 — area & power (28 nm @ 1 GHz)"))

    pipeline = CoDesignPipeline()
    rows = []
    for dataset in ("deepvoxels", "nerf_synthetic", "llff"):
        result = pipeline.fps_comparison(dataset)
        rows.append([dataset, result["gen_nerf_fps"],
                     result["rtx2080ti_fps"], result["tx2_fps"],
                     f"{result['speedup_vs_2080ti']:.0f}x",
                     f"{result['speedup_vs_tx2']:.0f}x"])
    print()
    print(format_table(
        ["dataset", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS",
         "speedup vs 2080Ti", "vs TX2"],
        rows, title="Fig. 10 — throughput (paper: 239-256x vs 2080Ti)"))

    sim = pipeline.simulate_accelerator("nerf_synthetic")
    print(f"\ntypical workload detail: {sim.fps:.1f} FPS, "
          f"{sim.num_patches} patches, "
          f"{sim.prefetch_bytes / 1e6:.0f} MB prefetch traffic, "
          f"PE utilization {sim.pe_utilization:.2f}, "
          f"exposed data latency {sim.data_time_s * 1e3:.2f} ms "
          f"(scheduler hidden: {sim.scheduler_hidden})")

    print()
    rows = []
    for name, result in dataflow_ablation("nerf_synthetic", 6).items():
        rows.append([name, f"{result.fps:.1f}",
                     f"{result.fetch_time_s * 1e3:.0f}",
                     f"{result.compute_time_s * 1e3:.0f}",
                     f"{result.pe_utilization:.2f}"])
    print(format_table(
        ["variant", "FPS", "data ms", "compute ms", "PE util"],
        rows, title="Fig. 12 — dataflow/storage ablation (6 views)"))

    print("\n=== batched simulate_frame demo ===\n")
    batched_simulation_demo()


if __name__ == "__main__":
    main()
