"""Simulate the Gen-NeRF accelerator on the paper's typical workload.

Reproduces the headline hardware story in one script: the delivered
(pruned, Ray-Mixer, coarse-then-focus) model rendering 800x800 frames
from 6 source views on

* the Gen-NeRF accelerator (cycle-level simulator; paper: 24.9 FPS),
* an RTX 2080Ti and a Jetson TX2 (calibrated roofline models), and
* the Fig. 12 dataflow/storage ablation variants.

Also prints the Table 1 area/power budget and the prefetch traffic the
greedy 3D-point-patch partition achieves.
"""

from repro.core import (CoDesignPipeline, dataflow_ablation, format_table,
                        run_table1)


def main() -> None:
    print("=== Gen-NeRF accelerator simulation ===\n")
    print(format_table(
        ["module", "area mm^2", "paper", "power mW", "paper"],
        run_table1(), title="Table 1 — area & power (28 nm @ 1 GHz)"))

    pipeline = CoDesignPipeline()
    rows = []
    for dataset in ("deepvoxels", "nerf_synthetic", "llff"):
        result = pipeline.fps_comparison(dataset)
        rows.append([dataset, result["gen_nerf_fps"],
                     result["rtx2080ti_fps"], result["tx2_fps"],
                     f"{result['speedup_vs_2080ti']:.0f}x",
                     f"{result['speedup_vs_tx2']:.0f}x"])
    print()
    print(format_table(
        ["dataset", "Gen-NeRF FPS", "2080Ti FPS", "TX2 FPS",
         "speedup vs 2080Ti", "vs TX2"],
        rows, title="Fig. 10 — throughput (paper: 239-256x vs 2080Ti)"))

    sim = pipeline.simulate_accelerator("nerf_synthetic")
    print(f"\ntypical workload detail: {sim.fps:.1f} FPS, "
          f"{sim.num_patches} patches, "
          f"{sim.prefetch_bytes / 1e6:.0f} MB prefetch traffic, "
          f"PE utilization {sim.pe_utilization:.2f}, "
          f"exposed data latency {sim.data_time_s * 1e3:.2f} ms "
          f"(scheduler hidden: {sim.scheduler_hidden})")

    print()
    rows = []
    for name, result in dataflow_ablation("nerf_synthetic", 6).items():
        rows.append([name, f"{result.fps:.1f}",
                     f"{result.fetch_time_s * 1e3:.0f}",
                     f"{result.compute_time_s * 1e3:.0f}",
                     f"{result.pe_utilization:.2f}"])
    print(format_table(
        ["variant", "FPS", "data ms", "compute ms", "PE util"],
        rows, title="Fig. 12 — dataflow/storage ablation (6 views)"))


if __name__ == "__main__":
    main()
